package tactic

import (
	"errors"
	"fmt"
	"sync"

	"llmfscq/internal/kernel"
)

// instantiated is a lemma/rule statement with its universal binders replaced
// by fresh metavariables.
type instantiated struct {
	flex  map[string]bool
	metas []string
	prems []*kernel.Form
	concl *kernel.Form
}

// instantiate peels alternating forall/impl prefixes, replacing term binders
// with metavariables. Type binders (`forall (A : Type)`) are dropped: types
// are annotations and never occur in term positions.
func instantiate(stmt *kernel.Form, mc *kernel.MetaCounter) instantiated {
	insts := instantiateAll(stmt, mc)
	return insts[len(insts)-1]
}

// instantiateAll returns the instantiation at every premise boundary, from
// least stripped (whole matrix as conclusion) to fully stripped. apply tries
// the fully stripped form first, then backs off, which lets a `~`-lemma
// match a `~`-goal the way Coq's apply does.
func instantiateAll(stmt *kernel.Form, mc *kernel.MetaCounter) []instantiated {
	var out []instantiated
	inst := instantiated{flex: map[string]bool{}}
	f := stmt
	for {
		switch f.Kind {
		case kernel.FForall:
			if f.BType.IsType() {
				f = f.Body
				continue
			}
			m := mc.Fresh(f.Binder)
			inst.flex[m] = true
			inst.metas = append(inst.metas, m)
			f = f.Body.Subst1(f.Binder, kernel.V(m))
		case kernel.FImpl:
			snap := inst
			snap.concl = f
			snap.prems = append([]*kernel.Form(nil), inst.prems...)
			out = append(out, snap)
			inst.prems = append(inst.prems, f.L)
			f = f.R
		case kernel.FNot:
			// ~A is A -> False (applying a negated hypothesis to a False
			// goal is routine Coq style).
			snap := inst
			snap.concl = f
			snap.prems = append([]*kernel.Form(nil), inst.prems...)
			out = append(out, snap)
			inst.prems = append(inst.prems, f.L)
			f = kernel.False()
		default:
			inst.concl = f
			out = append(out, inst)
			return out
		}
	}
}

// instMemo caches instantiations by canonical statement pointer. Safe
// because the instantiation list is a pure function of the statement when
// the MetaCounter starts fresh (metavariable names are then determined by
// binder order alone), and every consumer treats the result as read-only:
// flex maps are only read by unification, and prems/concl/metas are never
// written through. auto cannot use this memo — its resolver threads one
// counter across the whole resolution so repeated uses of a lemma get
// distinct metavariables.
var instMemo sync.Map // *kernel.Form -> []instantiated

// instantiations is instantiateAll with a fresh MetaCounter, memoized on
// interned statements (interned pointers are canonical, so the key is the
// statement's identity; non-interned statements fall back to recomputing).
func instantiations(stmt *kernel.Form) []instantiated {
	if stmt.Interned() {
		if v, ok := instMemo.Load(stmt); ok {
			return v.([]instantiated)
		}
	}
	var mc kernel.MetaCounter
	insts := instantiateAll(stmt, &mc)
	if stmt.Interned() {
		if v, loaded := instMemo.LoadOrStore(stmt, insts); loaded {
			return v.([]instantiated)
		}
	}
	return insts
}

// lookupStmt resolves a name to a hypothesis or lemma statement.
func lookupStmt(env *kernel.Env, g *Goal, name string) (*kernel.Form, error) {
	if h, ok := g.HypNamed(name); ok {
		return h.Form, nil
	}
	if l, ok := env.Lemmas[name]; ok {
		return l.Stmt, nil
	}
	if _, r := env.RuleNamed(name); r != nil {
		return r.Statement(), nil
	}
	return nil, fmt.Errorf("tactic: unknown hypothesis or lemma %q", name)
}

// metasResolved checks that every meta resolves to a meta-free term.
func metasResolved(inst instantiated, sub kernel.Subst, sc *kernel.Scratch) bool {
	for _, m := range inst.metas {
		t := kernel.FullResolveS(kernel.V(m), sub, sc)
		if t.IsVar() && inst.flex[t.Var] {
			return false
		}
		unresolved := false
		t.Subterms(func(u *kernel.Term) bool {
			if u.IsVar() && inst.flex[u.Var] {
				unresolved = true
				return false
			}
			return true
		})
		if unresolved {
			return false
		}
	}
	return true
}

// resolvePremsWithHyps tries to determine remaining metavariables by
// unifying under-determined premises against hypotheses, in order. This is
// the eapply/econstructor approximation: existentials may not escape a
// single tactic, so they must be fixed by some hypothesis.
func resolvePremsWithHyps(g *Goal, inst instantiated, sub kernel.Subst, sc *kernel.Scratch) kernel.Subst {
	for _, prem := range inst.prems {
		p := kernel.FullResolveFormS(prem, sub, sc)
		if !formHasMeta(p, inst.flex) {
			continue
		}
		for _, h := range g.Hyps {
			trial := sc.TrialSubst()
			copySub(trial, sub)
			if kernel.UnifyForms(p, h.Form, inst.flex, trial) {
				sub = trial
				break
			}
			sc.PutSubst(trial)
		}
	}
	return sub
}

func formHasMeta(f *kernel.Form, flex map[string]bool) bool {
	for v := range f.FreeVars() {
		if flex[v] {
			return true
		}
	}
	return false
}

func tacApply(env *kernel.Env, g *Goal, c Call, eapply bool, sc *kernel.Scratch) ([]*Goal, error) {
	if len(c.Idents) == 0 {
		return nil, errors.New("tactic: apply expects a name")
	}
	name := c.Idents[0]
	stmt, err := lookupStmt(env, g, name)
	if err != nil {
		return nil, err
	}
	if c.InHyp != "" {
		return applyInHyp(env, g, stmt, c.InHyp, sc)
	}
	candidates := instantiations(stmt)
	var inst instantiated
	var sub kernel.Subst
	matched := false
	trial := sc.TrialSubst()
	for i := len(candidates) - 1; i >= 0; i-- {
		if kernel.UnifyForms(candidates[i].concl, g.Concl, candidates[i].flex, trial) {
			// trial's ownership transfers to sub; it is never recycled.
			inst, sub, matched = candidates[i], trial, true
			break
		}
		if len(trial) > 0 {
			clear(trial)
		}
	}
	if !matched {
		sc.PutSubst(trial)
		return nil, errors.New("tactic: cannot unify lemma conclusion with the goal")
	}
	// `apply L with t ...`: positional instantiation of the metavariables
	// left unresolved by conclusion unification, in binder order.
	if len(c.Terms) > 0 {
		wi := 0
		for _, m := range inst.metas {
			if wi >= len(c.Terms) {
				break
			}
			r := kernel.Resolve(kernel.V(m), sub)
			if r.IsVar() && inst.flex[r.Var] {
				t, err := resolveGoalTerm(env, g, c.Terms[wi])
				if err != nil {
					return nil, err
				}
				sub[r.Var] = t
				wi++
			}
		}
		if wi < len(c.Terms) {
			return nil, errors.New("tactic: too many 'with' instantiations")
		}
	}
	if eapply {
		sub = resolvePremsWithHyps(g, inst, sub, sc)
	}
	if !metasResolved(inst, sub, sc) {
		if eapply {
			return nil, errors.New("tactic: cannot determine existential instances")
		}
		return nil, errors.New("tactic: cannot infer instantiation; try eapply")
	}
	out := make([]*Goal, 0, len(inst.prems))
	for _, prem := range inst.prems {
		ng := g.Clone()
		ng.Concl = kernel.FullResolveFormS(prem, sub, sc)
		out = append(out, ng)
	}
	return out, nil
}

// applyInHyp is `apply L in H`: forward chaining.
func applyInHyp(env *kernel.Env, g *Goal, stmt *kernel.Form, hname string, sc *kernel.Scratch) ([]*Goal, error) {
	h, ok := g.HypNamed(hname)
	if !ok {
		return nil, fmt.Errorf("tactic: no hypothesis %q", hname)
	}
	candidates := instantiations(stmt)
	// Use the least-stripped instantiation with exactly one premise: H is
	// matched against the lemma's first premise and replaced by everything
	// after it (Coq does not unfold `~` past the first premise here).
	var inst instantiated
	var sub kernel.Subst
	matched := false
	trial := sc.TrialSubst()
	for _, cand := range candidates {
		if len(cand.prems) == 0 {
			continue
		}
		if kernel.UnifyForms(cand.prems[0], h.Form, cand.flex, trial) {
			inst, sub, matched = cand, trial, true
			break
		}
		if len(trial) > 0 {
			clear(trial)
		}
	}
	if !matched {
		sc.PutSubst(trial)
		if len(candidates[len(candidates)-1].prems) == 0 {
			return nil, errors.New("tactic: lemma has no premise to match the hypothesis")
		}
		return nil, errors.New("tactic: cannot unify lemma premise with the hypothesis")
	}
	if !metasResolved(inst, sub, sc) {
		return nil, errors.New("tactic: cannot infer instantiation for apply ... in")
	}
	main := g.ReplaceHyp(hname, kernel.FullResolveFormS(inst.concl, sub, sc))
	out := []*Goal{main}
	for _, prem := range inst.prems[1:] {
		ng := g.Clone()
		ng.Concl = kernel.FullResolveFormS(prem, sub, sc)
		out = append(out, ng)
	}
	return out, nil
}

func tacConstructor(env *kernel.Env, g *Goal, econ bool, sc *kernel.Scratch) ([]*Goal, error) {
	switch g.Concl.Kind {
	case kernel.FTrue:
		return nil, nil
	case kernel.FAnd:
		return tacSplit(env, g)
	case kernel.FOr:
		return tacLeftRight(env, g, true)
	case kernel.FEq:
		return tacReflexivity(env, g)
	case kernel.FExists:
		return nil, errors.New("tactic: use 'exists' to provide a witness")
	case kernel.FPred:
		p, ok := env.Preds[g.Concl.Pred]
		if !ok {
			return nil, fmt.Errorf("tactic: %q is not an inductive predicate", g.Concl.Pred)
		}
		var firstErr error
		for i := range p.Rules {
			r := &p.Rules[i]
			out, err := applyRule(env, g, r, econ, sc)
			if err == nil {
				return out, nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		if firstErr == nil {
			firstErr = errors.New("tactic: no applicable constructor")
		}
		return nil, firstErr
	}
	return nil, errors.New("tactic: goal has no constructors")
}

func applyRule(env *kernel.Env, g *Goal, r *kernel.Rule, econ bool, sc *kernel.Scratch) ([]*Goal, error) {
	insts := instantiations(r.Statement())
	inst := insts[len(insts)-1]
	sub := sc.TrialSubst()
	if !kernel.UnifyForms(inst.concl, g.Concl, inst.flex, sub) {
		sc.PutSubst(sub)
		return nil, fmt.Errorf("tactic: constructor %s does not match", r.Name)
	}
	if econ {
		sub = resolvePremsWithHyps(g, inst, sub, sc)
	}
	if !metasResolved(inst, sub, sc) {
		return nil, fmt.Errorf("tactic: constructor %s leaves undetermined instances", r.Name)
	}
	out := make([]*Goal, 0, len(inst.prems))
	for _, prem := range inst.prems {
		ng := g.Clone()
		ng.Concl = kernel.FullResolveFormS(prem, sub, sc)
		out = append(out, ng)
	}
	return out, nil
}
