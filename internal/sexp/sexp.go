// Package sexp implements the S-expression surface format used by the
// proof-checker wire protocol. It stands in for the serialization layer that
// SerAPI provides on top of Coq: a small, total reader/printer for atoms,
// strings, and nested lists.
//
// The grammar is deliberately close to SerAPI's:
//
//	sexp   := atom | string | '(' sexp* ')'
//	atom   := [^()"\s]+
//	string := '"' (escaped chars) '"'
//
// Atoms are kept as raw strings; numbers are atoms whose text parses as an
// integer. Strings preserve arbitrary bytes via backslash escapes.
package sexp

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is an S-expression node: either an atom/string leaf or a list.
type Node struct {
	// IsList reports whether the node is a list; when false the node is a
	// leaf and Atom holds its text.
	IsList bool
	// Atom is the leaf text. For Str leaves it holds the decoded contents.
	Atom string
	// Str marks a leaf that was written as a quoted string and must be
	// re-quoted when printed.
	Str bool
	// List holds child nodes when IsList is true.
	List []*Node
}

// Sym returns an atom leaf.
func Sym(s string) *Node { return &Node{Atom: s} }

// Str returns a quoted-string leaf.
func Str(s string) *Node { return &Node{Atom: s, Str: true} }

// Int returns an integer atom leaf.
func Int(i int) *Node { return &Node{Atom: strconv.Itoa(i)} }

// L builds a list node from its children.
func L(children ...*Node) *Node { return &Node{IsList: true, List: children} }

// IsSym reports whether n is the atom s.
func (n *Node) IsSym(s string) bool { return n != nil && !n.IsList && !n.Str && n.Atom == s }

// Head returns the first child's atom text if n is a non-empty list whose
// head is an atom, else "".
func (n *Node) Head() string {
	if n == nil || !n.IsList || len(n.List) == 0 || n.List[0].IsList {
		return ""
	}
	return n.List[0].Atom
}

// Nth returns the i-th child of a list node, or nil when out of range.
func (n *Node) Nth(i int) *Node {
	if n == nil || !n.IsList || i < 0 || i >= len(n.List) {
		return nil
	}
	return n.List[i]
}

// AsInt parses the node as an integer atom.
func (n *Node) AsInt() (int, error) {
	if n == nil || n.IsList {
		return 0, fmt.Errorf("sexp: not an integer atom")
	}
	return strconv.Atoi(n.Atom)
}

// String renders the node back to S-expression text.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	switch {
	case n == nil:
		b.WriteString("()")
	case n.IsList:
		b.WriteByte('(')
		for i, c := range n.List {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.write(b)
		}
		b.WriteByte(')')
	case n.Str:
		b.WriteString(strconv.Quote(n.Atom))
	default:
		b.WriteString(n.Atom)
	}
}

// Parse reads a single S-expression from the input, returning the node and
// the number of bytes consumed.
func Parse(input string) (*Node, int, error) {
	p := &parser{src: input}
	p.skipSpace()
	n, err := p.parseNode()
	if err != nil {
		return nil, p.pos, err
	}
	return n, p.pos, nil
}

// ParseAll reads every S-expression in the input.
func ParseAll(input string) ([]*Node, error) {
	var out []*Node
	p := &parser{src: input}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return out, nil
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == ';' { // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		return
	}
}

func (p *parser) parseNode() (*Node, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("sexp: unexpected end of input")
	}
	switch c := p.src[p.pos]; {
	case c == '(':
		p.pos++
		n := &Node{IsList: true}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("sexp: unterminated list")
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return n, nil
			}
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.List = append(n.List, child)
		}
	case c == ')':
		return nil, fmt.Errorf("sexp: unexpected ')' at offset %d", p.pos)
	case c == '"':
		return p.parseString()
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseString() (*Node, error) {
	start := p.pos
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '"':
			p.pos++
			return &Node{Atom: b.String(), Str: true}, nil
		case '\\':
			// Delegate escape decoding to strconv by finding the end of the
			// quoted literal and unquoting it wholesale. Simpler: handle the
			// escapes we emit (strconv.Quote output).
			p.pos++
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("sexp: unterminated escape in string at offset %d", start)
			}
			e := p.src[p.pos]
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'a':
				b.WriteByte('\a')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'v':
				b.WriteByte('\v')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'x':
				if p.pos+2 >= len(p.src) {
					return nil, fmt.Errorf("sexp: bad \\x escape at offset %d", p.pos)
				}
				v, err := strconv.ParseUint(p.src[p.pos+1:p.pos+3], 16, 8)
				if err != nil {
					return nil, fmt.Errorf("sexp: bad \\x escape at offset %d: %v", p.pos, err)
				}
				b.WriteByte(byte(v))
				p.pos += 2
			case 'u':
				if p.pos+4 >= len(p.src) {
					return nil, fmt.Errorf("sexp: bad \\u escape at offset %d", p.pos)
				}
				v, err := strconv.ParseUint(p.src[p.pos+1:p.pos+5], 16, 32)
				if err != nil {
					return nil, fmt.Errorf("sexp: bad \\u escape at offset %d: %v", p.pos, err)
				}
				b.WriteRune(rune(v))
				p.pos += 4
			case 'U':
				if p.pos+8 >= len(p.src) {
					return nil, fmt.Errorf("sexp: bad \\U escape at offset %d", p.pos)
				}
				v, err := strconv.ParseUint(p.src[p.pos+1:p.pos+9], 16, 32)
				if err != nil || v > 0x10FFFF {
					return nil, fmt.Errorf("sexp: bad \\U escape at offset %d", p.pos)
				}
				b.WriteRune(rune(v))
				p.pos += 8
			default:
				return nil, fmt.Errorf("sexp: unknown escape \\%c at offset %d", e, p.pos)
			}
			p.pos++
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return nil, fmt.Errorf("sexp: unterminated string at offset %d", start)
}

func (p *parser) parseAtom() (*Node, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == '"' || c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("sexp: empty atom at offset %d", start)
	}
	return &Node{Atom: p.src[start:p.pos]}, nil
}
