package sexp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	n, _, err := Parse(`(Exec "intros." (Goals 2))`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Head() != "Exec" {
		t.Fatalf("head %q", n.Head())
	}
	if n.Nth(1).Atom != "intros." || !n.Nth(1).Str {
		t.Fatalf("string arg %+v", n.Nth(1))
	}
	if got, _ := n.Nth(2).Nth(1).AsInt(); got != 2 {
		t.Fatalf("int arg %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"(", ")", `"unterminated`, "(a (b)"} {
		if _, _, err := Parse(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestParseComments(t *testing.T) {
	ns, err := ParseAll("; comment\n(a b) ; trailing\n(c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0].Head() != "a" || ns[1].Head() != "c" {
		t.Fatalf("parsed %v", ns)
	}
}

func genNode(rng *rand.Rand, depth int) *Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return Sym("atom" + string(rune('a'+rng.Intn(26))))
		case 1:
			return Str("s\"tr\n" + string(rune('a'+rng.Intn(26))))
		default:
			return Int(rng.Intn(1000) - 500)
		}
	}
	n := rng.Intn(4)
	kids := make([]*Node, n)
	for i := range kids {
		kids[i] = genNode(rng, depth-1)
	}
	return L(kids...)
}

type nodeValue struct{ N *Node }

func (nodeValue) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(nodeValue{N: genNode(rng, 4)})
}

// Print-then-parse is the identity (round trip), including escapes.
func TestRoundTrip(t *testing.T) {
	f := func(v nodeValue) bool {
		parsed, _, err := Parse(v.N.String())
		if err != nil {
			return false
		}
		return parsed.String() == v.N.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringEscapes(t *testing.T) {
	n := Str("line1\nline2\t\"quoted\"")
	parsed, _, err := Parse(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Atom != n.Atom {
		t.Fatalf("escape round trip: %q vs %q", parsed.Atom, n.Atom)
	}
}
