// The proof-cache layer: typed, content-addressed views over the raw
// record store for the two things the evaluation stack persists —
// per-theorem proof outcomes (so a warm re-sweep skips whole searches) and
// negative Try results (so a warm search skips re-executing tactics the
// checker already rejected). Appends go through a write-behind channel
// drained by one background goroutine, so recording never blocks a search;
// the hot path (core.TryCache Get/Put) is untouched — warm records are
// bulk-loaded into the in-memory tier before a search starts and new ones
// are drained out after the run.

package store

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Key-namespace tags (first byte of every store key).
const (
	nsOutcome = 'O'
	nsTry     = 'T'
)

// CacheConfig configures OpenCache.
type CacheConfig struct {
	// Dir is the store directory.
	Dir string
	// ReadOnly serves warm lookups but records nothing.
	ReadOnly bool
	// CorpusHash is the 128-bit content hash of the corpus sources
	// (corpus.Hash). Every key embeds it, so a corpus edit is a full miss
	// by construction.
	CorpusHash [2]uint64
	// MirrorDen samples roughly one in MirrorDen warm hits for a live
	// recomputation cross-check (mirror-first discipline; 0 disables).
	MirrorDen int
	// Store tuning (zero values take the Options defaults). Dir/ReadOnly
	// above win over the embedded fields.
	MaxBytes     int64
	TTL          time.Duration
	SegmentBytes int64
	Now          func() time.Time
}

// OutcomeKey identifies one persisted proof-search outcome: everything the
// result is a function of. The corpus hash is added by the Cache.
type OutcomeKey struct {
	// Env is the environment identity fingerprint (corpus hash + theorem
	// position + hint split).
	Env [2]uint64
	// Root is the StrictKey of the initial proof state.
	Root [2]uint64
	// Profile fingerprints the model profile's calibration constants.
	Profile uint64
	// Setting, Variant, and Search name the prompt setting, the experiment
	// variant (std/reduced/whole:N), and the search algorithm.
	Setting, Variant, Search string
	// Width, Fuel, and Seed are the search hyperparameters.
	Width, Fuel int
	Seed        int64
}

// OutcomeRec is the persisted payload of one outcome: only what cannot be
// recomputed from the corpus. Derived metrics (token counts, similarity)
// are recomputed from the proof at reconstruction, so a record can never
// disagree with its own script.
type OutcomeRec struct {
	Status  uint8
	Queries int
	Proof   string
}

// TryRec is one persisted negative Try result: the checker's verdict for a
// (state, sentence) pair. Only Rejected/Timeout outcomes are persisted —
// an Applied outcome needs its successor state, which is cheaper to
// recompute than to serialize and rehydrate.
type TryRec struct {
	State    [2]uint64
	Sentence string
	Status   uint8
	Msg      string
}

// Cache is the typed persistence layer. All methods are safe for
// concurrent use.
type Cache struct {
	st        *Store
	corpus    [2]uint64
	readonly  bool
	mirrorDen int

	// tryByEnv buckets the warm Try records by environment fingerprint,
	// built once at open so per-search warming is O(bucket).
	tryByEnv map[[2]uint64][]TryRec

	pend   chan pendItem
	wg     sync.WaitGroup
	closed atomic.Bool

	outcomeHits      atomic.Int64
	outcomeMisses    atomic.Int64
	tryWarmed        atomic.Int64
	recorded         atomic.Int64
	dropped          atomic.Int64
	mirrorChecks     atomic.Int64
	mirrorMismatches atomic.Int64
	appendErr        atomic.Pointer[error]
}

// OpenCache opens (or creates) the persistent proof cache at cfg.Dir and
// starts the write-behind appender.
func OpenCache(cfg CacheConfig) (*Cache, error) {
	st, err := Open(Options{
		Dir:          cfg.Dir,
		ReadOnly:     cfg.ReadOnly,
		MaxBytes:     cfg.MaxBytes,
		TTL:          cfg.TTL,
		SegmentBytes: cfg.SegmentBytes,
		Now:          cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	c := &Cache{
		st:        st,
		corpus:    cfg.CorpusHash,
		readonly:  cfg.ReadOnly,
		mirrorDen: cfg.MirrorDen,
		tryByEnv:  map[[2]uint64][]TryRec{},
		pend:      make(chan pendItem, 4096),
	}
	c.loadTryBuckets()
	c.wg.Add(1)
	go c.appendLoop()
	return c, nil
}

// loadTryBuckets indexes the store's Try records by environment
// fingerprint, sorted for deterministic warm order.
func (c *Cache) loadTryBuckets() {
	c.st.Range(func(key string, val []byte, ts int64) {
		env, rec, ok := c.decodeTry(key, val)
		if !ok {
			return
		}
		c.tryByEnv[env] = append(c.tryByEnv[env], rec)
	})
	for _, bucket := range c.tryByEnv {
		sort.Slice(bucket, func(i, j int) bool {
			a, b := bucket[i], bucket[j]
			if a.State != b.State {
				return a.State[0] < b.State[0] || (a.State[0] == b.State[0] && a.State[1] < b.State[1])
			}
			return a.Sentence < b.Sentence
		})
	}
}

// pendItem is one unit of work for the appender: a record, or (flush set)
// a request to commit everything received so far and signal completion.
type pendItem struct {
	rec   Rec
	flush chan struct{}
}

// appendLoop drains the write-behind channel in batches: one disk write +
// fsync per batch, never per record. A failed append disables further
// recording (the error is surfaced in Stats and by Close) — the cache
// degrades to read-only rather than blocking or crashing the sweep.
func (c *Cache) appendLoop() {
	defer c.wg.Done()
	batch := make([]Rec, 0, 256)
	var flushes []chan struct{}
	commit := func() {
		if len(batch) > 0 && c.appendErr.Load() == nil {
			if err := c.st.AppendBatch(batch); err != nil {
				c.appendErr.Store(&err)
			}
		}
		batch = batch[:0]
		for _, f := range flushes {
			close(f)
		}
		flushes = flushes[:0]
	}
	add := func(it pendItem) {
		if it.flush != nil {
			flushes = append(flushes, it.flush)
		} else {
			batch = append(batch, it.rec)
		}
	}
	for it := range c.pend {
		add(it)
	drain:
		for len(batch) < cap(batch) {
			select {
			case more, ok := <-c.pend:
				if !ok {
					break drain
				}
				add(more)
			default:
				break drain
			}
		}
		commit()
	}
	commit()
}

// Flush blocks until every record enqueued before the call has been handed
// to the store (or dropped). It must not race with Close.
func (c *Cache) Flush() {
	if c.readonly || c.closed.Load() {
		return
	}
	done := make(chan struct{})
	c.pend <- pendItem{flush: done}
	<-done
}

// enqueue hands one record to the appender without ever blocking: if the
// channel is full the record is dropped and counted — a lost cache entry
// costs a future recompute, never a stall.
func (c *Cache) enqueue(key, val []byte) {
	if c.readonly || c.closed.Load() || c.appendErr.Load() != nil {
		c.dropped.Add(1)
		return
	}
	if c.st.Has(key) {
		return // already persisted (idempotent backfill)
	}
	select {
	case c.pend <- pendItem{rec: Rec{Key: key, Val: val}}:
		c.recorded.Add(1)
	default:
		c.dropped.Add(1)
	}
}

// --- outcome records --------------------------------------------------------

// outcomeKeyBytes encodes k with the cache's corpus hash.
func (c *Cache) outcomeKeyBytes(k OutcomeKey) []byte {
	buf := make([]byte, 0, 96+len(k.Setting)+len(k.Variant)+len(k.Search))
	buf = append(buf, nsOutcome)
	buf = appendPair(buf, c.corpus)
	buf = appendPair(buf, k.Env)
	buf = appendPair(buf, k.Root)
	buf = binary.BigEndian.AppendUint64(buf, k.Profile)
	buf = binary.BigEndian.AppendUint32(buf, uint32(k.Width))
	buf = binary.BigEndian.AppendUint32(buf, uint32(k.Fuel))
	buf = binary.BigEndian.AppendUint64(buf, uint64(k.Seed))
	buf = append(buf, k.Setting...)
	buf = append(buf, 0)
	buf = append(buf, k.Variant...)
	buf = append(buf, 0)
	buf = append(buf, k.Search...)
	return buf
}

func appendPair(buf []byte, p [2]uint64) []byte {
	buf = binary.BigEndian.AppendUint64(buf, p[0])
	return binary.BigEndian.AppendUint64(buf, p[1])
}

// LookupOutcome returns the persisted outcome for k.
func (c *Cache) LookupOutcome(k OutcomeKey) (OutcomeRec, bool) {
	val, ok := c.st.Get(c.outcomeKeyBytes(k))
	if !ok || len(val) < 5 {
		c.outcomeMisses.Add(1)
		return OutcomeRec{}, false
	}
	c.outcomeHits.Add(1)
	return OutcomeRec{
		Status:  val[0],
		Queries: int(binary.BigEndian.Uint32(val[1:])),
		Proof:   string(val[5:]),
	}, true
}

// RecordOutcome persists rec under k via the write-behind appender.
func (c *Cache) RecordOutcome(k OutcomeKey, rec OutcomeRec) {
	val := make([]byte, 0, 5+len(rec.Proof))
	val = append(val, rec.Status)
	val = binary.BigEndian.AppendUint32(val, uint32(rec.Queries))
	val = append(val, rec.Proof...)
	c.enqueue(c.outcomeKeyBytes(k), val)
}

// MirrorOutcome reports whether k falls in the deterministic mirror sample:
// roughly one key in MirrorDen, chosen by key hash so the same key is
// always (or never) cross-checked, independent of schedule.
func (c *Cache) MirrorOutcome(k OutcomeKey) bool {
	if c.mirrorDen <= 0 {
		return false
	}
	h := uint64(1469598103934665603)
	for _, b := range c.outcomeKeyBytes(k) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h%uint64(c.mirrorDen) == 0
}

// NoteMirror records one outcome-level mirror cross-check result.
func (c *Cache) NoteMirror(ok bool) {
	c.mirrorChecks.Add(1)
	if !ok {
		c.mirrorMismatches.Add(1)
	}
}

// MirrorDen returns the sampling denominator (0 = mirroring off).
func (c *Cache) MirrorDen() int { return c.mirrorDen }

// --- try records ------------------------------------------------------------

// tryKeyBytes encodes a Try key: namespace, corpus hash, env fingerprint,
// state StrictKey, sentence.
func (c *Cache) tryKeyBytes(env, state [2]uint64, sentence string) []byte {
	buf := make([]byte, 0, 49+len(sentence))
	buf = append(buf, nsTry)
	buf = appendPair(buf, c.corpus)
	buf = appendPair(buf, env)
	buf = appendPair(buf, state)
	buf = append(buf, sentence...)
	return buf
}

// decodeTry parses one raw store record as a Try record of this corpus.
func (c *Cache) decodeTry(key string, val []byte) (env [2]uint64, rec TryRec, ok bool) {
	if len(key) < 49 || key[0] != nsTry || len(val) < 1 {
		return env, rec, false
	}
	k := []byte(key[1:])
	if binary.BigEndian.Uint64(k) != c.corpus[0] || binary.BigEndian.Uint64(k[8:]) != c.corpus[1] {
		return env, rec, false // another corpus's records: dead weight until TTL
	}
	env = [2]uint64{binary.BigEndian.Uint64(k[16:]), binary.BigEndian.Uint64(k[24:])}
	rec = TryRec{
		State:    [2]uint64{binary.BigEndian.Uint64(k[32:]), binary.BigEndian.Uint64(k[40:])},
		Sentence: key[49:],
		Status:   val[0],
		Msg:      string(val[1:]),
	}
	return env, rec, true
}

// TryRecords returns the warm Try records for one environment fingerprint,
// sorted deterministically. The caller loads them into the in-memory
// TryCache before a search; the slice is shared and must not be mutated.
func (c *Cache) TryRecords(env [2]uint64) []TryRec {
	recs := c.tryByEnv[env] // built at open, immutable afterwards
	c.tryWarmed.Add(int64(len(recs)))
	return recs
}

// RecordTry persists one negative Try result via the write-behind appender.
func (c *Cache) RecordTry(env [2]uint64, rec TryRec) {
	val := make([]byte, 0, 1+len(rec.Msg))
	val = append(val, rec.Status)
	val = append(val, rec.Msg...)
	c.enqueue(c.tryKeyBytes(env, rec.State, rec.Sentence), val)
}

// --- stats / lifecycle ------------------------------------------------------

// CacheStats snapshots the typed layer's counters plus the underlying
// store's, for the structured cache-stats line.
type CacheStats struct {
	ReadOnly         bool   `json:"read_only"`
	OutcomeHits      int64  `json:"outcome_hits"`
	OutcomeMisses    int64  `json:"outcome_misses"`
	TryWarmed        int64  `json:"try_warmed"`
	Recorded         int64  `json:"recorded"`
	Dropped          int64  `json:"dropped"`
	MirrorChecks     int64  `json:"mirror_checks"`
	MirrorMismatches int64  `json:"mirror_mismatches"`
	AppendError      string `json:"append_error,omitempty"`
	Store            Stats  `json:"store"`
}

// Stats returns a snapshot of the cache and store counters.
func (c *Cache) Stats() CacheStats {
	cs := CacheStats{
		ReadOnly:         c.readonly,
		OutcomeHits:      c.outcomeHits.Load(),
		OutcomeMisses:    c.outcomeMisses.Load(),
		TryWarmed:        c.tryWarmed.Load(),
		Recorded:         c.recorded.Load(),
		Dropped:          c.dropped.Load(),
		MirrorChecks:     c.mirrorChecks.Load(),
		MirrorMismatches: c.mirrorMismatches.Load(),
		Store:            c.st.Stats(),
	}
	if p := c.appendErr.Load(); p != nil {
		cs.AppendError = (*p).Error()
	}
	return cs
}

// Mismatches returns the outcome-level mirror mismatch count.
func (c *Cache) Mismatches() int64 { return c.mirrorMismatches.Load() }

// Close drains the write-behind queue, fsyncs, and closes the store. It
// returns the first append error if recording failed mid-run.
func (c *Cache) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.pend)
	c.wg.Wait()
	var err error
	if p := c.appendErr.Load(); p != nil {
		err = *p
	}
	if cerr := c.st.Close(); cerr != nil {
		err = errors.Join(err, cerr)
	}
	return err
}
