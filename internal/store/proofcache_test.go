package store

import (
	"testing"
)

func openCacheT(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := OpenCache(cfg)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	return c
}

func closeCacheT(t *testing.T, c *Cache) {
	t.Helper()
	if err := c.Close(); err != nil {
		t.Fatalf("Cache.Close: %v", err)
	}
}

var testCorpus = [2]uint64{0x1111, 0x2222}

func testOutcomeKey() OutcomeKey {
	return OutcomeKey{
		Env:     [2]uint64{3, 4},
		Root:    [2]uint64{5, 6},
		Profile: 7,
		Setting: "with-hints",
		Variant: "std",
		Search:  "best-first",
		Width:   4,
		Fuel:    128,
		Seed:    99,
	}
}

func TestOutcomeRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	k := testOutcomeKey()
	if _, ok := c.LookupOutcome(k); ok {
		t.Fatal("lookup hit on empty cache")
	}
	rec := OutcomeRec{Status: 2, Queries: 17, Proof: "intros.\nauto."}
	c.RecordOutcome(k, rec)
	closeCacheT(t, c) // drains the write-behind queue

	c2 := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	defer closeCacheT(t, c2)
	got, ok := c2.LookupOutcome(k)
	if !ok {
		t.Fatal("recorded outcome missing after reopen")
	}
	if got != rec {
		t.Fatalf("outcome = %+v; want %+v", got, rec)
	}
	st := c2.Stats()
	if st.OutcomeHits != 1 || st.OutcomeMisses != 0 {
		t.Fatalf("hits/misses = %d/%d; want 1/0", st.OutcomeHits, st.OutcomeMisses)
	}
}

func TestOutcomeKeyComponentsDiscriminate(t *testing.T) {
	dir := t.TempDir()
	c := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	defer closeCacheT(t, c)
	base := testOutcomeKey()
	c.RecordOutcome(base, OutcomeRec{Status: 1})
	c.Flush()

	// Every field of the key must discriminate: a change in any one is a
	// miss, which is what makes invalidation by construction work.
	variants := map[string]OutcomeKey{}
	k := base
	k.Env = [2]uint64{30, 40}
	variants["env"] = k
	k = base
	k.Root = [2]uint64{50, 60}
	variants["root"] = k
	k = base
	k.Profile = 70
	variants["profile"] = k
	k = base
	k.Setting = "sketch"
	variants["setting"] = k
	k = base
	k.Variant = "reduced"
	variants["variant"] = k
	k = base
	k.Search = "linear"
	variants["search"] = k
	k = base
	k.Width = 5
	variants["width"] = k
	k = base
	k.Fuel = 129
	variants["fuel"] = k
	k = base
	k.Seed = 100
	variants["seed"] = k
	for name, v := range variants {
		if _, ok := c.LookupOutcome(v); ok {
			t.Errorf("changed %s but lookup still hit", name)
		}
	}
	// Delimited strings must not be confusable across field boundaries.
	k = base
	k.Setting, k.Variant = base.Setting+"x", base.Variant
	c.RecordOutcome(k, OutcomeRec{Status: 3})
	c.Flush()
	if got, ok := c.LookupOutcome(base); !ok || got.Status != 1 {
		t.Fatalf("base key perturbed by neighbour record: %+v %v", got, ok)
	}
}

func TestCorpusHashIsolatesCaches(t *testing.T) {
	dir := t.TempDir()
	c := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	k := testOutcomeKey()
	c.RecordOutcome(k, OutcomeRec{Status: 2, Proof: "auto."})
	env := [2]uint64{3, 4}
	c.RecordTry(env, TryRec{State: [2]uint64{9, 9}, Sentence: "ring.", Status: 1, Msg: "no"})
	closeCacheT(t, c)

	// Same directory, different corpus hash (one flipped bit): everything
	// is a miss — outcome lookups and Try warm buckets alike.
	other := [2]uint64{testCorpus[0] ^ 1, testCorpus[1]}
	c2 := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: other})
	defer closeCacheT(t, c2)
	if _, ok := c2.LookupOutcome(k); ok {
		t.Fatal("outcome hit across corpus hash change")
	}
	if recs := c2.TryRecords(env); len(recs) != 0 {
		t.Fatalf("TryRecords across corpus hash change = %d; want 0", len(recs))
	}
}

func TestTryRecordsBucketedAndSorted(t *testing.T) {
	dir := t.TempDir()
	c := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	envA := [2]uint64{1, 1}
	envB := [2]uint64{2, 2}
	// Insert out of order; the warm bucket must come back sorted.
	c.RecordTry(envA, TryRec{State: [2]uint64{9, 0}, Sentence: "zeta.", Status: 1, Msg: "m1"})
	c.RecordTry(envA, TryRec{State: [2]uint64{1, 0}, Sentence: "beta.", Status: 2, Msg: "m2"})
	c.RecordTry(envA, TryRec{State: [2]uint64{1, 0}, Sentence: "alpha.", Status: 1, Msg: "m3"})
	c.RecordTry(envB, TryRec{State: [2]uint64{5, 5}, Sentence: "only.", Status: 1, Msg: "m4"})
	closeCacheT(t, c)

	c2 := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	defer closeCacheT(t, c2)
	recsA := c2.TryRecords(envA)
	if len(recsA) != 3 {
		t.Fatalf("envA records = %d; want 3", len(recsA))
	}
	wantOrder := []string{"alpha.", "beta.", "zeta."}
	for i, want := range wantOrder {
		if recsA[i].Sentence != want {
			t.Fatalf("envA[%d].Sentence = %q; want %q (sorted)", i, recsA[i].Sentence, want)
		}
	}
	if recsA[0].Status != 1 || recsA[0].Msg != "m3" {
		t.Fatalf("envA[0] = %+v; want Status 1 Msg m3", recsA[0])
	}
	if recsB := c2.TryRecords(envB); len(recsB) != 1 || recsB[0].Sentence != "only." {
		t.Fatalf("envB records = %+v; want the single only. record", recsB)
	}
	if recs := c2.TryRecords([2]uint64{7, 7}); len(recs) != 0 {
		t.Fatalf("unknown env records = %d; want 0", len(recs))
	}
}

func TestMirrorOutcomeDeterministicSampling(t *testing.T) {
	dir := t.TempDir()
	c := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus, MirrorDen: 4})
	defer closeCacheT(t, c)
	k := testOutcomeKey()
	first := c.MirrorOutcome(k)
	for i := 0; i < 10; i++ {
		if c.MirrorOutcome(k) != first {
			t.Fatal("MirrorOutcome not deterministic for a fixed key")
		}
	}
	// Across many distinct keys the sample must be non-trivial: some picked,
	// some not (a degenerate all/none sample would make mirroring useless or
	// as expensive as a cold run).
	picked := 0
	for i := 0; i < 256; i++ {
		k.Seed = int64(i)
		if c.MirrorOutcome(k) {
			picked++
		}
	}
	if picked == 0 || picked == 256 {
		t.Fatalf("mirror sample degenerate: %d/256", picked)
	}

	off := openCacheT(t, CacheConfig{Dir: t.TempDir(), CorpusHash: testCorpus})
	defer closeCacheT(t, off)
	if off.MirrorOutcome(k) {
		t.Fatal("MirrorOutcome true with mirroring disabled")
	}
	all := openCacheT(t, CacheConfig{Dir: t.TempDir(), CorpusHash: testCorpus, MirrorDen: 1})
	defer closeCacheT(t, all)
	if !all.MirrorOutcome(k) {
		t.Fatal("MirrorOutcome false with MirrorDen=1")
	}
}

func TestReadOnlyCacheDropsRecords(t *testing.T) {
	dir := t.TempDir()
	c := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	k := testOutcomeKey()
	c.RecordOutcome(k, OutcomeRec{Status: 2, Proof: "auto."})
	closeCacheT(t, c)

	ro := openCacheT(t, CacheConfig{Dir: dir, ReadOnly: true, CorpusHash: testCorpus})
	if _, ok := ro.LookupOutcome(k); !ok {
		t.Fatal("read-only cache missed a persisted outcome")
	}
	k2 := testOutcomeKey()
	k2.Seed = 123456
	ro.RecordOutcome(k2, OutcomeRec{Status: 1})
	if st := ro.Stats(); st.Dropped == 0 {
		t.Fatalf("read-only record not counted as dropped: %+v", st)
	}
	closeCacheT(t, ro)

	c2 := openCacheT(t, CacheConfig{Dir: dir, CorpusHash: testCorpus})
	defer closeCacheT(t, c2)
	if _, ok := c2.LookupOutcome(k2); ok {
		t.Fatal("read-only cache persisted a record")
	}
}

func TestNoteMirrorCounters(t *testing.T) {
	c := openCacheT(t, CacheConfig{Dir: t.TempDir(), CorpusHash: testCorpus, MirrorDen: 2})
	defer closeCacheT(t, c)
	c.NoteMirror(true)
	c.NoteMirror(true)
	c.NoteMirror(false)
	st := c.Stats()
	if st.MirrorChecks != 3 || st.MirrorMismatches != 1 {
		t.Fatalf("mirror counters = %d/%d; want 3/1", st.MirrorChecks, st.MirrorMismatches)
	}
	if c.Mismatches() != 1 {
		t.Fatalf("Mismatches = %d; want 1", c.Mismatches())
	}
	if c.MirrorDen() != 2 {
		t.Fatalf("MirrorDen = %d; want 2", c.MirrorDen())
	}
}
