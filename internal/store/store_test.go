package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%+v): %v", opts, err)
	}
	return s
}

func closeT(t *testing.T, s *Store) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if err := s.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put([]byte("beta"), []byte("two")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put([]byte("alpha"), []byte("one-v2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	closeT(t, s)

	s2 := openT(t, Options{Dir: dir})
	defer closeT(t, s2)
	if got, ok := s2.Get([]byte("alpha")); !ok || string(got) != "one-v2" {
		t.Fatalf("alpha = %q,%v; want one-v2 (last writer wins)", got, ok)
	}
	if got, ok := s2.Get([]byte("beta")); !ok || string(got) != "two" {
		t.Fatalf("beta = %q,%v; want two", got, ok)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d; want 2", s2.Len())
	}
}

func TestAppendBatchDedupsIdenticalValues(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	defer closeT(t, s)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	before := s.Stats().DiskBytes
	// Re-appending the identical value is the warm-run backfill case: it
	// must be a no-op on disk.
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put dup: %v", err)
	}
	if after := s.Stats().DiskBytes; after != before {
		t.Fatalf("identical re-append grew disk: %d -> %d", before, after)
	}
	if got := s.Stats().Appends; got != 1 {
		t.Fatalf("Appends = %d; want 1", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if err := s.Put([]byte(key), bytes.Repeat([]byte{'x'}, 32)); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
	}
	if segs := s.Stats().Segments; segs < 2 {
		t.Fatalf("Segments = %d; want rotation (>= 2)", segs)
	}
	closeT(t, s)

	s2 := openT(t, Options{Dir: dir, SegmentBytes: 256})
	defer closeT(t, s2)
	if s2.Len() != 40 {
		t.Fatalf("reopened Len = %d; want 40", s2.Len())
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if _, ok := s2.Get([]byte(key)); !ok {
			t.Fatalf("missing %s after rotation+reopen", key)
		}
	}
}

// lastSegPath returns the path of the highest-numbered segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(des) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, des[len(des)-1].Name())
}

func TestTornTailTruncatedAndBackfilled(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if err := s.Put([]byte("keep"), []byte("safe")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put([]byte("torn"), []byte("lost-by-crash")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	closeT(t, s)

	// Simulate a crash mid-append: chop the last few bytes of the final
	// record so its frame no longer parses.
	path := lastSegPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	s2 := openT(t, Options{Dir: dir})
	if _, ok := s2.Get([]byte("keep")); !ok {
		t.Fatal("record before the torn tail was lost")
	}
	if _, ok := s2.Get([]byte("torn")); ok {
		t.Fatal("torn record served despite bad frame")
	}
	if got := s2.Stats().TornDropped; got != 1 {
		t.Fatalf("TornDropped = %d; want 1", got)
	}
	// The store must have truncated the torn bytes so new appends land on a
	// clean frame; backfilling the record makes it durable again.
	if err := s2.Put([]byte("torn"), []byte("lost-by-crash")); err != nil {
		t.Fatalf("backfill Put: %v", err)
	}
	closeT(t, s2)

	s3 := openT(t, Options{Dir: dir})
	defer closeT(t, s3)
	if got, ok := s3.Get([]byte("torn")); !ok || string(got) != "lost-by-crash" {
		t.Fatalf("backfilled record = %q,%v; want lost-by-crash", got, ok)
	}
	if got := s3.Stats().TornDropped; got != 0 {
		t.Fatalf("TornDropped after repair = %d; want 0", got)
	}
}

func TestMidSegmentCorruptionAbandonsRemainder(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put([]byte(k), []byte("val-"+k)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}
	closeT(t, s)

	// Flip one payload byte of the middle record: its CRC fails, and the
	// scanner cannot trust any later frame in the segment.
	path := lastSegPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	idx := bytes.Index(data, []byte("val-b"))
	if idx < 0 {
		t.Fatal("middle record not found")
	}
	data[idx] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	s2 := openT(t, Options{Dir: dir})
	defer closeT(t, s2)
	if _, ok := s2.Get([]byte("a")); !ok {
		t.Fatal("record before corruption was lost")
	}
	if _, ok := s2.Get([]byte("b")); ok {
		t.Fatal("corrupt record served")
	}
	if _, ok := s2.Get([]byte("c")); ok {
		t.Fatal("record after corruption served (no trustworthy frame)")
	}
	if got := s2.Stats().CorruptDropped; got != 1 {
		t.Fatalf("CorruptDropped = %d; want 1", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(1_000_000, 0)
	now := func() time.Time { return clock }
	s := openT(t, Options{Dir: dir, TTL: time.Hour, Now: now})
	if err := s.Put([]byte("old"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	closeT(t, s)

	clock = clock.Add(2 * time.Hour)
	s2 := openT(t, Options{Dir: dir, TTL: time.Hour, Now: now})
	defer closeT(t, s2)
	if _, ok := s2.Get([]byte("old")); ok {
		t.Fatal("expired record served")
	}
	if got := s2.Stats().Expired; got != 1 {
		t.Fatalf("Expired = %d; want 1", got)
	}
}

func TestMaxBytesEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(1_000_000, 0)
	now := func() time.Time { return clock }
	s := openT(t, Options{Dir: dir, Now: now})
	big := bytes.Repeat([]byte{'z'}, 64)
	for i := 0; i < 8; i++ {
		clock = clock.Add(time.Second) // distinct timestamps: age order is real
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), big); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	closeT(t, s)

	// Reopen with a bound that holds roughly half the records.
	s2 := openT(t, Options{Dir: dir, MaxBytes: 4 * recSize("k0", big), Now: now})
	defer closeT(t, s2)
	if got := s2.Stats().Evicted; got == 0 {
		t.Fatal("no evictions under MaxBytes bound")
	}
	if _, ok := s2.Get([]byte("k0")); ok {
		t.Fatal("oldest record survived eviction")
	}
	if _, ok := s2.Get([]byte("k7")); !ok {
		t.Fatal("newest record evicted")
	}
}

func TestForeignGenerationColdStarts(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	closeT(t, s)

	path := lastSegPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(magic)+3]++ // bump the generation field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	s2 := openT(t, Options{Dir: dir})
	defer closeT(t, s2)
	if s2.Len() != 0 {
		t.Fatalf("Len = %d after generation bump; want cold start", s2.Len())
	}
	if got := s2.Stats().GenerationSkips; got != 1 {
		t.Fatalf("GenerationSkips = %d; want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("foreign segment not removed: %v", err)
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	closeT(t, s)

	// Tear the tail; read-only open must serve what it can without
	// repairing the file on disk.
	path := lastSegPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, fi.Size()-2); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	ro := openT(t, Options{Dir: dir, ReadOnly: true})
	defer closeT(t, ro)
	if err := ro.Put([]byte("x"), []byte("y")); err == nil {
		t.Fatal("Put succeeded on read-only store")
	}
	fi2, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat after RO open: %v", err)
	}
	if fi2.Size() != fi.Size()-2 {
		t.Fatalf("read-only open changed the file: %d -> %d", fi.Size()-2, fi2.Size())
	}

	// A read-only open of a nonexistent directory is an empty store.
	empty := openT(t, Options{Dir: filepath.Join(dir, "missing"), ReadOnly: true})
	defer closeT(t, empty)
	if empty.Len() != 0 {
		t.Fatalf("missing-dir RO store Len = %d; want 0", empty.Len())
	}
}

func TestCompactionKeepsLiveSetAndIsDeterministic(t *testing.T) {
	write := func(dir string) {
		s := openT(t, Options{Dir: dir, SegmentBytes: 128, Now: func() time.Time { return time.Unix(42, 0) }})
		for i := 0; i < 10; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%d", i%3)), []byte(fmt.Sprintf("gen-%d", i))); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		closeT(t, s)
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	write(dirA)
	write(dirB)

	s := openT(t, Options{Dir: dirA, Now: func() time.Time { return time.Unix(43, 0) }})
	defer closeT(t, s)
	if s.Len() != 3 {
		t.Fatalf("Len after compaction = %d; want 3", s.Len())
	}
	for k, want := range map[string]string{"k0": "gen-9", "k1": "gen-7", "k2": "gen-8"} {
		if got, ok := s.Get([]byte(k)); !ok || string(got) != want {
			t.Fatalf("%s = %q,%v; want %q", k, got, ok, want)
		}
	}

	// Same live set + same clock → byte-identical compacted segments.
	bytesA, err := os.ReadFile(lastSegPath(t, dirA))
	if err != nil {
		t.Fatalf("ReadFile A: %v", err)
	}
	bytesB, err := os.ReadFile(lastSegPath(t, dirB))
	if err != nil {
		t.Fatalf("ReadFile B: %v", err)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatal("compaction output not deterministic for identical content")
	}
}
