// Package store implements the on-disk half of the proof/Try cache: an
// append-only, crash-safe, content-addressed record store. PR 5 made every
// goal/state identity a pure 128-bit structural key and the Try/outcome
// caches pure functions of those keys plus the environment, so proof
// results can be persisted and reused across processes: repeated sweeps,
// CI invocations, and future proofd requests warm-start instead of
// recomputing (ROADMAP: "fast once" vs "fast for millions of repeat
// queries").
//
// The layout is a Bitcask-style log: numbered segment files of
// length-prefixed, checksummed records, with the full live key set held in
// an in-memory index. Writers only ever append; compaction rewrites the
// live set into a fresh segment and deletes the old ones. Every record
// carries a timestamp for TTL retention, and every segment carries a
// generation header so a format bump cleanly cold-starts instead of
// misparsing old bytes.
//
// Crash safety is by construction: a torn final record (a crash mid-append)
// fails its length or checksum check and is truncated away on the next
// open; everything before it is intact because records are never updated in
// place. Invalidation is also by construction — the cache layers above key
// every record on content hashes (corpus, environment, state), so an edit
// changes the key rather than staling the value.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Generation is the on-disk format version. Segments written by a different
// generation are discarded at open (a cold start), never misparsed.
const Generation = 1

// magic identifies a segment file of this store.
const magic = "LFSQPRF\n"

const (
	headerSize = len(magic) + 8 // magic + generation(4) + segment index(4)
	recHeader  = 8              // length(4) + crc(4)
)

// castagnoli is the CRC-32C table (the checksum used by modern log formats;
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Dir is the store directory (created if absent, unless ReadOnly).
	Dir string
	// ReadOnly opens the store without an active segment: lookups work,
	// appends fail, and no repair (truncation, compaction, foreign-segment
	// deletion) touches the disk.
	ReadOnly bool
	// SegmentBytes rotates the active segment when it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// MaxBytes bounds the live set: compaction evicts oldest-first until
	// under (default 256 MiB; <0 disables).
	MaxBytes int64
	// TTL expires records older than this at open and compaction
	// (default 30 days; <0 disables).
	TTL time.Duration
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 256 << 20
	}
	if o.TTL == 0 {
		o.TTL = 30 * 24 * time.Hour
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Rec is one key/value record for AppendBatch.
type Rec struct {
	Key []byte
	Val []byte
}

type entry struct {
	val []byte
	ts  int64 // unix seconds at append time
}

// Stats is a point-in-time snapshot of the store's counters, for the
// cache-stats line and the bench harness.
type Stats struct {
	Entries   int   `json:"entries"`
	Segments  int   `json:"segments"`
	DiskBytes int64 `json:"disk_bytes"`
	// Gets/Hits count index lookups; Appends counts records written this
	// process (after batch dedup).
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Appends int64 `json:"appends"`
	// TornDropped counts tail records truncated at open (crash mid-append);
	// CorruptDropped counts mid-segment records abandoned on a checksum
	// mismatch; Expired counts records dropped by TTL; Evicted counts
	// records dropped by the MaxBytes bound.
	TornDropped    int64 `json:"torn_dropped"`
	CorruptDropped int64 `json:"corrupt_dropped"`
	Expired        int64 `json:"expired"`
	Evicted        int64 `json:"evicted"`
	Compactions    int64 `json:"compactions"`
	// GenerationSkips counts whole segments discarded for a foreign
	// generation header (format bump = cold start).
	GenerationSkips int64 `json:"generation_skips"`
	// OldestAgeSeconds is the age of the oldest live record.
	OldestAgeSeconds int64 `json:"oldest_age_seconds"`
}

// Store is the on-disk record store. All methods are safe for concurrent
// use; writes are serialized internally. One process per directory: the
// store does no cross-process locking.
type Store struct {
	opts Options

	mu         sync.Mutex
	index      map[string]entry
	active     *os.File
	activeSeg  int
	activeSize int64
	diskBytes  int64 // total bytes across all segment files
	liveBytes  int64 // bytes the live set would occupy if rewritten
	segments   []int // existing segment indexes, ascending
	stats      Stats
	closed     bool
}

// Open loads every valid record from dir's segments into memory, repairs a
// torn tail (read-write mode only), applies TTL/size retention, and
// prepares an active segment for appends.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{opts: opts, index: make(map[string]entry)}
	if opts.ReadOnly {
		if _, err := os.Stat(opts.Dir); err != nil {
			if os.IsNotExist(err) {
				return s, nil // empty read-only store: all lookups miss
			}
			return nil, err
		}
	} else if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		if err := s.scanSegment(seg); err != nil {
			return nil, err
		}
	}
	if !opts.ReadOnly {
		s.applyRetention()
		// Compact when more than half the on-disk bytes are dead, so the log
		// cannot grow without bound under churn.
		if s.diskBytes > s.opts.SegmentBytes && s.diskBytes > 2*s.liveBytes {
			if err := s.compactLocked(); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// segName renders the segment file name for index i.
func segName(i int) string { return fmt.Sprintf("seg-%08d.log", i) }

// listSegments returns the existing segment indexes in ascending order.
func (s *Store) listSegments() ([]int, error) {
	des, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []int
	for _, de := range des {
		var i int
		// A parse failure just means "not a segment file" (stray tmp file,
		// editor droppings): skip it, don't fail the open.
		if n, err := fmt.Sscanf(de.Name(), "seg-%d.log", &i); err == nil && n == 1 && !strings.HasSuffix(de.Name(), ".tmp") {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scanSegment loads one segment's records. The last segment may legally end
// in a torn record (crash mid-append): it is truncated away in read-write
// mode, skipped in read-only mode. A checksum failure anywhere abandons the
// rest of the segment — later records have no trustworthy frame to resync
// on — but earlier records and later segments are unaffected.
func (s *Store) scanSegment(seg int) error {
	path := filepath.Join(s.opts.Dir, segName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	drop := func(reason string) error {
		if s.opts.ReadOnly {
			s.stats.GenerationSkips++
			return nil
		}
		s.stats.GenerationSkips++
		_ = reason
		return os.Remove(path)
	}
	if len(data) < headerSize || string(data[:len(magic)]) != magic ||
		binary.BigEndian.Uint32(data[len(magic):len(magic)+4]) != Generation {
		// Foreign or truncated-below-header segment: cold-start it away.
		return drop("foreign generation")
	}
	off := headerSize
	good := off // offset just past the last fully-valid record
	for off < len(data) {
		if len(data)-off < recHeader {
			s.stats.TornDropped++
			break
		}
		length := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if length < 8 || len(data)-off-recHeader < length {
			s.stats.TornDropped++
			break
		}
		payload := data[off+recHeader : off+recHeader+length]
		if crc32.Checksum(payload, castagnoli) != crc {
			// A corrupt record mid-file is not a torn tail; count it
			// separately and abandon the unreachable remainder.
			s.stats.CorruptDropped++
			break
		}
		ts := int64(binary.BigEndian.Uint32(payload))
		klen := int(binary.BigEndian.Uint32(payload[4:]))
		if klen < 0 || 8+klen > length {
			s.stats.CorruptDropped++
			break
		}
		key := string(payload[8 : 8+klen])
		val := append([]byte(nil), payload[8+klen:]...)
		s.insert(key, entry{val: val, ts: ts})
		off += recHeader + length
		good = off
	}
	s.diskBytes += int64(len(data))
	s.segments = append(s.segments, seg)
	if good < len(data) && !s.opts.ReadOnly {
		// Truncate the torn/corrupt tail so the next append starts on a
		// clean frame. The lost suffix is re-appended by whoever recomputes
		// it (the backfill property the eval tests pin).
		if err := os.Truncate(path, int64(good)); err != nil {
			return err
		}
		s.diskBytes -= int64(len(data) - good)
	}
	return nil
}

// insert replaces the index entry for key, maintaining liveBytes.
func (s *Store) insert(key string, e entry) {
	if old, ok := s.index[key]; ok {
		s.liveBytes -= recSize(key, old.val)
	}
	s.index[key] = e
	s.liveBytes += recSize(key, e.val)
}

func recSize(key string, val []byte) int64 {
	return int64(recHeader + 8 + len(key) + len(val))
}

// applyRetention drops expired entries and, when the live set exceeds
// MaxBytes, evicts oldest-first until under. Disk space is reclaimed by the
// next compaction; the entries stop being served immediately.
func (s *Store) applyRetention() {
	now := s.opts.Now().Unix()
	var victims []string
	for k, e := range s.index {
		if s.opts.TTL > 0 && now-e.ts > int64(s.opts.TTL/time.Second) {
			victims = append(victims, k)
		}
	}
	sort.Strings(victims)
	for _, k := range victims {
		s.liveBytes -= recSize(k, s.index[k].val)
		delete(s.index, k)
		s.stats.Expired++
	}
	if s.opts.MaxBytes <= 0 || s.liveBytes <= s.opts.MaxBytes {
		return
	}
	keys := s.sortedKeysByAge()
	for _, k := range keys {
		if s.liveBytes <= s.opts.MaxBytes {
			break
		}
		s.liveBytes -= recSize(k, s.index[k].val)
		delete(s.index, k)
		s.stats.Evicted++
	}
}

// sortedKeysByAge returns the live keys oldest-first (ties broken by key,
// so retention is deterministic for a given content set).
func (s *Store) sortedKeysByAge() []string {
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ti, tj := s.index[keys[i]].ts, s.index[keys[j]].ts
		if ti != tj {
			return ti < tj
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Get returns the stored value for key. The returned slice is the index's
// backing array: callers must not mutate it.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	e, ok := s.index[string(key)]
	if !ok {
		return nil, false
	}
	if s.opts.TTL > 0 && s.opts.Now().Unix()-e.ts > int64(s.opts.TTL/time.Second) {
		return nil, false
	}
	s.stats.Hits++
	return e.val, true
}

// Has reports whether key is live, without counting a lookup.
func (s *Store) Has(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[string(key)]
	return ok
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Range calls f for every live record. Iteration order is unspecified;
// callers that need determinism must collect and sort.
func (s *Store) Range(f func(key string, val []byte, ts int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range s.index {
		f(k, e.val, e.ts)
	}
}

// Put appends one record (AppendBatch of one).
func (s *Store) Put(key, val []byte) error {
	return s.AppendBatch([]Rec{{Key: key, Val: val}})
}

// AppendBatch appends records in one write + one fsync, updating the index.
// Records whose key already holds a byte-identical value are skipped, so
// re-recording a warm run's results (the backfill sweep) is idempotent on
// disk. Returns an error in read-only mode.
func (s *Store) AppendBatch(recs []Rec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return errors.New("store: append to read-only store")
	}
	if s.closed {
		return errors.New("store: append to closed store")
	}
	now := s.opts.Now().Unix()
	var buf []byte
	type pending struct {
		key string
		val []byte
	}
	var applied []pending
	for _, r := range recs {
		if old, ok := s.index[string(r.Key)]; ok && string(old.val) == string(r.Val) {
			continue
		}
		buf = appendRecord(buf, now, r.Key, r.Val)
		applied = append(applied, pending{key: string(r.Key), val: append([]byte(nil), r.Val...)})
	}
	if len(buf) == 0 {
		return nil
	}
	if err := s.ensureActive(int64(len(buf))); err != nil {
		return err
	}
	if _, err := s.active.Write(buf); err != nil {
		return err
	}
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.activeSize += int64(len(buf))
	s.diskBytes += int64(len(buf))
	for _, p := range applied {
		s.insert(p.key, entry{val: p.val, ts: now})
		s.stats.Appends++
	}
	return nil
}

// appendRecord encodes one record frame onto buf.
func appendRecord(buf []byte, ts int64, key, val []byte) []byte {
	length := 8 + len(key) + len(val)
	var hdr [recHeader + 8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(length))
	binary.BigEndian.PutUint32(hdr[8:], uint32(ts))
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(key)))
	crc := crc32.Checksum(hdr[8:], castagnoli)
	crc = crc32.Update(crc, castagnoli, key)
	crc = crc32.Update(crc, castagnoli, val)
	binary.BigEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	return buf
}

// ensureActive opens (or rotates to) a segment with room for n more bytes.
func (s *Store) ensureActive(n int64) error {
	if s.active != nil && s.activeSize+n > s.opts.SegmentBytes && s.activeSize > int64(headerSize) {
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	if s.active != nil {
		return nil
	}
	seg := 1
	if len(s.segments) > 0 {
		seg = s.segments[len(s.segments)-1] + 1
	}
	path := filepath.Join(s.opts.Dir, segName(seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[len(magic):], Generation)
	binary.BigEndian.PutUint32(hdr[len(magic)+4:], uint32(seg))
	if _, err := f.Write(hdr[:]); err != nil {
		return closeOnErr(f, err)
	}
	if err := f.Sync(); err != nil {
		return closeOnErr(f, err)
	}
	s.active = f
	s.activeSeg = seg
	s.activeSize = int64(headerSize)
	s.diskBytes += int64(headerSize)
	s.segments = append(s.segments, seg)
	return nil
}

// closeOnErr closes f after a failed write, preserving the original error.
func closeOnErr(f *os.File, err error) error {
	if cerr := f.Close(); cerr != nil {
		return errors.Join(err, cerr)
	}
	return err
}

// Compact rewrites the live set into a fresh segment and deletes the old
// ones. Crash-safe: the new segment is written under a temporary name and
// renamed into place before any old segment is removed, and its index is
// higher than every old segment's, so a crash between rename and removal
// leaves duplicates that last-writer-wins scanning resolves.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.opts.ReadOnly {
		return errors.New("store: compact read-only store")
	}
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	seg := 1
	if len(s.segments) > 0 {
		seg = s.segments[len(s.segments)-1] + 1
	}
	path := filepath.Join(s.opts.Dir, segName(seg))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[len(magic):], Generation)
	binary.BigEndian.PutUint32(hdr[len(magic)+4:], uint32(seg))
	if _, err := f.Write(hdr[:]); err != nil {
		return closeOnErr(f, err)
	}
	// Deterministic record order (sorted keys): the same live set always
	// compacts to byte-identical segments.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	written := int64(headerSize)
	var buf []byte
	for _, k := range keys {
		e := s.index[k]
		buf = appendRecord(buf[:0], e.ts, []byte(k), e.val)
		if _, err := f.Write(buf); err != nil {
			return closeOnErr(f, err)
		}
		written += int64(len(buf))
	}
	if err := f.Sync(); err != nil {
		return closeOnErr(f, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	old := s.segments
	for _, i := range old {
		if err := os.Remove(filepath.Join(s.opts.Dir, segName(i))); err != nil {
			return err
		}
	}
	s.segments = []int{seg}
	s.diskBytes = written
	s.activeSize = 0
	s.stats.Compactions++
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return closeOnErr(d, err)
	}
	return d.Close()
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Segments = len(s.segments)
	st.DiskBytes = s.diskBytes
	now := s.opts.Now().Unix()
	oldest := int64(0)
	for _, e := range s.index {
		if age := now - e.ts; age > oldest {
			oldest = age
		}
	}
	st.OldestAgeSeconds = oldest
	return st
}

// Close fsyncs and closes the active segment. The store rejects appends
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	f := s.active
	s.active = nil
	if err := f.Sync(); err != nil {
		return closeOnErr(f, err)
	}
	return f.Close()
}
