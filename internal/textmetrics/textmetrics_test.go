package textmetrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"kitten", "sitting", 3},
		{"", "xyz", 3},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Metric properties: identity, symmetry, triangle inequality.
func TestLevenshteinMetric(t *testing.T) {
	ident := func(a string) bool { return Levenshtein(a, a) == 0 }
	sym := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	tri := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	for _, f := range []any{ident, sym, tri} {
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Similarity("intros. auto.", "intros. auto.") != 1 {
		t.Fatal("identical scripts not fully similar")
	}
	if Similarity("intros.   auto.", "intros. auto.") != 1 {
		t.Fatal("whitespace counted as difference")
	}
}

func TestRelativeLength(t *testing.T) {
	if got := RelativeLength("intros.", "intros. auto."); got >= 1 {
		t.Fatalf("shorter proof has ratio %f", got)
	}
	if got := RelativeLength("x", ""); got != 1 {
		t.Fatalf("empty human proof ratio %f", got)
	}
}

// The fast path of NormalizeScript must agree exactly with the general
// Join(Fields(s)) form.
func TestNormalizeScriptFastPath(t *testing.T) {
	cases := []string{
		"", " ", "intros.", "apply  foo.", " apply foo.", "apply foo. ",
		"a\tb", "a\nb", "a b c", "a  b c", "répéter tactique", "x y",
	}
	for _, s := range cases {
		want := strings.Join(strings.Fields(s), " ")
		if got := NormalizeScript(s); got != want {
			t.Errorf("NormalizeScript(%q) = %q, want %q", s, got, want)
		}
	}
}
