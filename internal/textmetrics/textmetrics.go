// Package textmetrics implements the text-similarity measures of the
// paper's §4.2: normalized Levenshtein distance between generated and
// human proofs (1 = exact match, 0 = completely dissimilar) and relative
// proof length.
package textmetrics

import (
	"strings"

	"llmfscq/internal/tokenizer"
)

// Levenshtein returns the edit distance between a and b (runes).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// NormalizeScript canonicalizes a proof script's whitespace so formatting
// differences do not count as edits.
func NormalizeScript(s string) string {
	// Fast path: most callers pass strings that are already normalized
	// (single ASCII spaces, no leading/trailing space), for which
	// Join(Fields(s)) is the identity; skip its two allocations then.
	// Any non-ASCII byte falls through to the general path, since Fields
	// splits on Unicode whitespace.
	clean := len(s) == 0 || (s[0] != ' ' && s[len(s)-1] != ' ')
	for i := 0; clean && i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' ||
			(c == ' ' && s[i+1] == ' ') {
			clean = false
		}
	}
	if clean {
		return s
	}
	return strings.Join(strings.Fields(s), " ")
}

// Similarity is the normalized Levenshtein similarity between two proof
// scripts: 1 - dist/max(len), on whitespace-normalized text. Two empty
// scripts are fully similar.
func Similarity(a, b string) float64 {
	a, b = NormalizeScript(a), NormalizeScript(b)
	la, lb := len([]rune(a)), len([]rune(b))
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// RelativeLength returns the generated proof's token length as a fraction
// of the human proof's token length (the paper's "Length" column).
func RelativeLength(generated, human string) float64 {
	h := tokenizer.Count(human)
	if h == 0 {
		return 1
	}
	return float64(tokenizer.Count(generated)) / float64(h)
}
