// Package balloc is the bitmap block allocator: one data-region word per
// allocatable block (0 = free, 1 = used), allocated first-fit — the layer
// FSCQ's Balloc.v verifies. All reads and writes go through the caller's
// open WAL transaction, so allocation commits atomically with its user.
package balloc

import (
	"errors"
	"fmt"

	"llmfscq/internal/fs/wal"
)

// ErrNoSpace is returned when every block is allocated.
var ErrNoSpace = errors.New("balloc: no free blocks")

// Alloc manages a bitmap at [start, start+count) in the WAL data region,
// tracking blocks [blockStart, blockStart+count).
type Alloc struct {
	log        *wal.Log
	start      int
	count      int
	blockStart int
}

// New mounts an allocator (the bitmap region must be within the data
// region).
func New(log *wal.Log, start, count, blockStart int) (*Alloc, error) {
	if start < 0 || start+count > log.DataSize() {
		return nil, fmt.Errorf("balloc: bitmap out of data region")
	}
	return &Alloc{log: log, start: start, count: count, blockStart: blockStart}, nil
}

// Count returns the number of managed blocks.
func (a *Alloc) Count() int { return a.count }

// Alloc finds a free block, marks it used, and returns its data-region
// address.
func (a *Alloc) Alloc() (int, error) {
	for i := 0; i < a.count; i++ {
		v, err := a.log.Read(a.start + i)
		if err != nil {
			return 0, err
		}
		if v == 0 {
			if err := a.log.Write(a.start+i, 1); err != nil {
				return 0, err
			}
			return a.blockStart + i, nil
		}
	}
	return 0, ErrNoSpace
}

// Free marks a block free again.
func (a *Alloc) Free(block int) error {
	i := block - a.blockStart
	if i < 0 || i >= a.count {
		return fmt.Errorf("balloc: free out of range: %d", block)
	}
	v, err := a.log.Read(a.start + i)
	if err != nil {
		return err
	}
	if v == 0 {
		return fmt.Errorf("balloc: double free of block %d", block)
	}
	return a.log.Write(a.start+i, 0)
}

// Used reports whether a block is allocated.
func (a *Alloc) Used(block int) (bool, error) {
	i := block - a.blockStart
	if i < 0 || i >= a.count {
		return false, fmt.Errorf("balloc: out of range: %d", block)
	}
	v, err := a.log.Read(a.start + i)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// CountFree returns the number of free blocks (the dynamic analogue of the
// corpus lemma count_free_le_length and friends).
func (a *Alloc) CountFree() (int, error) {
	n := 0
	for i := 0; i < a.count; i++ {
		v, err := a.log.Read(a.start + i)
		if err != nil {
			return 0, err
		}
		if v == 0 {
			n++
		}
	}
	return n, nil
}
