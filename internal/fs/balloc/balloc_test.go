package balloc

import (
	"testing"

	"llmfscq/internal/fs/disk"
	"llmfscq/internal/fs/wal"
)

func newAlloc(t *testing.T, count int) *Alloc {
	t.Helper()
	d := disk.New(1 + 2*32 + count)
	l, err := wal.New(d, 32)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(l, 0, count, 100)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocFirstFit(t *testing.T) {
	a := newAlloc(t, 4)
	b1, err := a.Alloc()
	if err != nil || b1 != 100 {
		t.Fatalf("first alloc %d %v", b1, err)
	}
	b2, _ := a.Alloc()
	if b2 != 101 {
		t.Fatalf("second alloc %d", b2)
	}
	if err := a.Free(b1); err != nil {
		t.Fatal(err)
	}
	b3, _ := a.Alloc()
	if b3 != 100 {
		t.Fatalf("freed block not reused first: %d", b3)
	}
}

func TestExhaustion(t *testing.T) {
	a := newAlloc(t, 2)
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err != ErrNoSpace {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	free, _ := a.CountFree()
	if free != 0 {
		t.Fatalf("free count %d", free)
	}
}

func TestDoubleFree(t *testing.T) {
	a := newAlloc(t, 2)
	b, _ := a.Alloc()
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b); err == nil {
		t.Fatal("double free accepted")
	}
	if err := a.Free(999); err == nil {
		t.Fatal("out-of-range free accepted")
	}
}

// The allocator invariant: allocs - frees == count - CountFree, and Used
// agrees (dynamic analogue of the Balloc.v lemmas).
func TestCountFreeInvariant(t *testing.T) {
	a := newAlloc(t, 8)
	var held []int
	for i := 0; i < 5; i++ {
		b, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, b)
	}
	_ = a.Free(held[1])
	_ = a.Free(held[3])
	free, err := a.CountFree()
	if err != nil {
		t.Fatal(err)
	}
	if free != 8-3 {
		t.Fatalf("free = %d, want 5", free)
	}
	used, _ := a.Used(held[0])
	if !used {
		t.Fatal("held block reported free")
	}
	used, _ = a.Used(held[1])
	if used {
		t.Fatal("freed block reported used")
	}
}
