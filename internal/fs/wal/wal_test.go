package wal

import (
	"math/rand"
	"testing"

	"llmfscq/internal/fs/disk"
)

func newLog(t *testing.T, entries, data int) (*disk.Disk, *Log) {
	t.Helper()
	d := disk.New(1 + 2*entries + data)
	l, err := New(d, entries)
	if err != nil {
		t.Fatal(err)
	}
	return d, l
}

func TestCommitApplies(t *testing.T) {
	_, l := newLog(t, 8, 16)
	if err := l.Write(3, 42); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(5, 7); err != nil {
		t.Fatal(err)
	}
	// Buffered writes are visible before commit.
	if v, _ := l.Read(3); v != 42 {
		t.Fatalf("read-through failed: got %d", v)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := l.Read(3); v != 42 {
		t.Fatalf("after commit: got %d", v)
	}
	if v, _ := l.Read(5); v != 7 {
		t.Fatalf("after commit: got %d", v)
	}
	if l.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestAbortDiscards(t *testing.T) {
	_, l := newLog(t, 8, 16)
	if err := l.Write(3, 42); err != nil {
		t.Fatal(err)
	}
	l.Abort()
	if v, _ := l.Read(3); v != 0 {
		t.Fatalf("abort leaked write: got %d", v)
	}
}

func TestOverwriteCoalesces(t *testing.T) {
	_, l := newLog(t, 2, 16)
	for i := 0; i < 10; i++ {
		if err := l.Write(1, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Pending() != 1 {
		t.Fatalf("coalescing failed: %d pending", l.Pending())
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := l.Read(1); v != 9 {
		t.Fatalf("got %d", v)
	}
}

func TestTooLarge(t *testing.T) {
	_, l := newLog(t, 2, 16)
	if err := l.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(2, 1); err != ErrTooLarge {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestOutOfRange(t *testing.T) {
	_, l := newLog(t, 2, 16)
	if err := l.Write(16, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := l.Read(-1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// TestCrashAtomicity is the dynamic analogue of the log's crash-safety
// theorem: for every possible crash point during a commit, and for several
// materializations of the unsynced-write nondeterminism, recovery yields
// either the full pre-transaction or the full post-transaction data region.
func TestCrashAtomicity(t *testing.T) {
	const entries, data = 16, 16
	pre := make([]uint64, data)
	for i := range pre {
		pre[i] = uint64(100 + i)
	}
	txn := []Entry{{Addr: 2, Val: 1000}, {Addr: 7, Val: 2000}, {Addr: 2, Val: 3000}, {Addr: 11, Val: 4000}}
	post := append([]uint64(nil), pre...)
	for _, e := range txn {
		post[e.Addr] = e.Val
	}

	for failAfter := 0; failAfter < 40; failAfter++ {
		for seed := int64(0); seed < 6; seed++ {
			d := disk.New(1 + 2*entries + data)
			l, err := New(d, entries)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range pre {
				if err := l.Write(i, v); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Commit(); err != nil {
				t.Fatal(err)
			}
			for _, e := range txn {
				if err := l.Write(e.Addr, e.Val); err != nil {
					t.Fatal(err)
				}
			}
			d.FailAfter(failAfter)
			err = l.Commit()
			if err == nil {
				// Crash point beyond the commit: nothing to test here.
				continue
			}
			if err != disk.ErrCrashed {
				t.Fatalf("unexpected error: %v", err)
			}
			crashed := d.Crash(rand.New(rand.NewSource(seed)))
			rl, err := Recover(crashed, entries)
			if err != nil {
				t.Fatalf("failAfter=%d seed=%d: recover: %v", failAfter, seed, err)
			}
			got := make([]uint64, data)
			for i := range got {
				v, err := rl.Read(i)
				if err != nil {
					t.Fatal(err)
				}
				got[i] = v
			}
			if !equal(got, pre) && !equal(got, post) {
				t.Fatalf("failAfter=%d seed=%d: non-atomic state %v (pre %v post %v)", failAfter, seed, got, pre, post)
			}
		}
	}
}

// TestRecoverIdempotent re-crashes during recovery itself: recovery must
// remain correct however often it is interrupted.
func TestRecoverIdempotent(t *testing.T) {
	const entries, data = 4, 8
	for failAfter := 0; failAfter < 20; failAfter++ {
		d := disk.New(1 + 2*entries + data)
		l, err := New(d, entries)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Write(1, 11); err != nil {
			t.Fatal(err)
		}
		if err := l.Write(2, 22); err != nil {
			t.Fatal(err)
		}
		// Crash right after the commit point: header says 2 entries.
		d.FailAfter(6) // entries(4 writes)+sync, header(1 write)+sync, then crash on apply
		err = l.Commit()
		crashed := d
		if err != nil {
			crashed = d.Crash(rand.New(rand.NewSource(1)))
		}
		// Now crash during recovery, repeatedly, then finish recovery.
		for round := 0; round < 3; round++ {
			crashed.FailAfter(failAfter % (3 + round))
			rl, rerr := Recover(crashed, entries)
			if rerr == nil {
				if v, _ := rl.Read(1); err == nil && v != 11 {
					// If the original commit succeeded, data must persist.
					t.Fatalf("lost committed data: %d", v)
				}
				break
			}
			crashed = crashed.Crash(rand.New(rand.NewSource(int64(round))))
		}
		crashed.FailAfter(-1)
		rl, rerr := Recover(crashed, entries)
		if rerr != nil {
			t.Fatalf("final recovery failed: %v", rerr)
		}
		v1, _ := rl.Read(1)
		v2, _ := rl.Read(2)
		if !((v1 == 11 && v2 == 22) || (v1 == 0 && v2 == 0)) {
			t.Fatalf("non-atomic after repeated recovery crashes: %d %d", v1, v2)
		}
	}
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
