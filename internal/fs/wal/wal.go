// Package wal implements the write-ahead log that gives the file system
// atomic multi-block transactions over the asynchronous disk — the layer
// whose crash safety FSCQ's Log.v proves.
//
// Disk layout:
//
//	block 0                      header: number of committed log entries
//	blocks 1 .. 2*MaxEntries     entry records: (addr, value) pairs
//	blocks DataStart() ..        the data region transactions address
//
// A transaction's writes are buffered in memory (deferred writes, as in
// DFSCQ). Commit makes them atomic: entries are written and synced first,
// then the header is written and synced (the commit point), then the
// entries are applied to the data region and the log is truncated. A crash
// before the header sync loses the whole transaction; a crash after it is
// redone by Recover.
package wal

import (
	"errors"
	"fmt"

	"llmfscq/internal/fs/disk"
)

// Entry is one logged write, addressed relative to the data region.
type Entry struct {
	Addr int
	Val  uint64
}

// Log is a write-ahead log mounted on a disk.
type Log struct {
	d   *disk.Disk
	max int
	// pending buffers the current transaction's writes in order.
	pending []Entry
	// pendingIdx indexes the latest pending write per address.
	pendingIdx map[int]int
}

// ErrTooLarge is returned when a transaction exceeds the log capacity.
var ErrTooLarge = errors.New("wal: transaction exceeds log capacity")

// New mounts a log with capacity maxEntries on a fresh (all-zero) disk.
func New(d *disk.Disk, maxEntries int) (*Log, error) {
	l := &Log{d: d, max: maxEntries, pendingIdx: map[int]int{}}
	if d.Size() < l.DataStart() {
		return nil, fmt.Errorf("wal: disk too small: %d < %d", d.Size(), l.DataStart())
	}
	return l, nil
}

// Recover mounts a log on a possibly-crashed disk, redoing any committed
// but unapplied transaction. It is idempotent: recovering a recovered disk
// is a no-op.
func Recover(d *disk.Disk, maxEntries int) (*Log, error) {
	l := &Log{d: d, max: maxEntries, pendingIdx: map[int]int{}}
	if d.Size() < l.DataStart() {
		return nil, fmt.Errorf("wal: disk too small")
	}
	n, err := d.Read(0)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return l, nil
	}
	if int(n) > maxEntries {
		return nil, fmt.Errorf("wal: corrupt header: %d entries", n)
	}
	// Redo the committed transaction.
	for i := 0; i < int(n); i++ {
		a, err := d.Read(1 + 2*i)
		if err != nil {
			return nil, err
		}
		v, err := d.Read(1 + 2*i + 1)
		if err != nil {
			return nil, err
		}
		if err := d.Write(l.DataStart()+int(a), v); err != nil {
			return nil, err
		}
	}
	if err := d.Sync(); err != nil {
		return nil, err
	}
	if err := d.Write(0, 0); err != nil {
		return nil, err
	}
	if err := d.Sync(); err != nil {
		return nil, err
	}
	return l, nil
}

// DataStart returns the first data-region block.
func (l *Log) DataStart() int { return 1 + 2*l.max }

// DataSize returns the number of data-region blocks.
func (l *Log) DataSize() int { return l.d.Size() - l.DataStart() }

// Read returns the value of data block a as seen by the current
// transaction (buffered writes are visible).
func (l *Log) Read(a int) (uint64, error) {
	if a < 0 || a >= l.DataSize() {
		return 0, fmt.Errorf("wal: read out of data region: %d", a)
	}
	if i, ok := l.pendingIdx[a]; ok {
		return l.pending[i].Val, nil
	}
	return l.d.Read(l.DataStart() + a)
}

// Write buffers a data-region write in the current transaction.
func (l *Log) Write(a int, v uint64) error {
	if a < 0 || a >= l.DataSize() {
		return fmt.Errorf("wal: write out of data region: %d", a)
	}
	if i, ok := l.pendingIdx[a]; ok {
		l.pending[i].Val = v
		return nil
	}
	if len(l.pending) >= l.max {
		return ErrTooLarge
	}
	l.pendingIdx[a] = len(l.pending)
	l.pending = append(l.pending, Entry{Addr: a, Val: v})
	return nil
}

// Pending returns the buffered entry count of the open transaction.
func (l *Log) Pending() int { return len(l.pending) }

// Abort discards the buffered transaction.
func (l *Log) Abort() {
	l.pending = nil
	l.pendingIdx = map[int]int{}
}

// Commit atomically applies the buffered transaction:
//
//  1. write the entries into the log region and sync,
//  2. write the header (entry count) and sync — the commit point,
//  3. apply the entries to the data region and sync,
//  4. truncate the log (header := 0) and sync.
//
// A crash anywhere leaves the disk recoverable to either the pre- or
// post-transaction state.
func (l *Log) Commit() error {
	if len(l.pending) == 0 {
		return nil
	}
	for i, e := range l.pending {
		if err := l.d.Write(1+2*i, uint64(e.Addr)); err != nil {
			return err
		}
		if err := l.d.Write(1+2*i+1, e.Val); err != nil {
			return err
		}
	}
	if err := l.d.Sync(); err != nil {
		return err
	}
	if err := l.d.Write(0, uint64(len(l.pending))); err != nil {
		return err
	}
	if err := l.d.Sync(); err != nil {
		return err
	}
	for _, e := range l.pending {
		if err := l.d.Write(l.DataStart()+e.Addr, e.Val); err != nil {
			return err
		}
	}
	if err := l.d.Sync(); err != nil {
		return err
	}
	if err := l.d.Write(0, 0); err != nil {
		return err
	}
	if err := l.d.Sync(); err != nil {
		return err
	}
	l.Abort()
	return nil
}
