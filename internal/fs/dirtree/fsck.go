package dirtree

import (
	"fmt"

	"llmfscq/internal/fs/inode"
)

// Fsck checks the file system's global invariants — the dynamic analogues
// of the corpus theorems:
//
//   - every allocated inode's blocks are in range, marked used in the
//     bitmap, and referenced exactly once (no double allocation);
//   - every used bitmap bit is referenced by exactly one inode (no leaks);
//   - every directory's entry names are distinct and nonzero
//     (tree_names_distinct) and point at allocated inodes;
//   - every allocated inode is reachable from the root exactly once.
func (f *FS) Fsck() error {
	refs := map[int]int{} // block -> reference count
	allocated := map[int]bool{}
	for i := 0; i < f.itable.Count(); i++ {
		ino, err := f.itable.Get(i)
		if err != nil {
			return fmt.Errorf("fsck: inode %d unreadable: %w", i, err)
		}
		if ino.Type == inode.Free {
			continue
		}
		allocated[i] = true
		if ino.Type == inode.Dir && ino.Size%2 != 0 {
			return fmt.Errorf("fsck: directory inode %d has odd size %d", i, ino.Size)
		}
		for k := 0; k < ino.Size; k++ {
			b := ino.Blocks[k]
			if b < f.blocksAt() || b >= f.blocksAt()+f.geo.NBlocks {
				return fmt.Errorf("fsck: inode %d block %d out of range", i, b)
			}
			used, err := f.alloc.Used(b)
			if err != nil {
				return err
			}
			if !used {
				return fmt.Errorf("fsck: inode %d references free block %d", i, b)
			}
			refs[b]++
			if refs[b] > 1 {
				return fmt.Errorf("fsck: block %d referenced twice", b)
			}
		}
	}
	// No leaked blocks.
	for b := f.blocksAt(); b < f.blocksAt()+f.geo.NBlocks; b++ {
		used, err := f.alloc.Used(b)
		if err != nil {
			return err
		}
		if used && refs[b] == 0 {
			return fmt.Errorf("fsck: block %d used but unreferenced", b)
		}
	}
	// Tree walk: names distinct, targets allocated, each inode reachable
	// exactly once.
	seen := map[int]bool{}
	var walk func(inum int) error
	walk = func(inum int) error {
		if seen[inum] {
			return fmt.Errorf("fsck: inode %d reachable twice", inum)
		}
		seen[inum] = true
		ino, err := f.itable.Get(inum)
		if err != nil {
			return err
		}
		if ino.Type != inode.Dir {
			return nil
		}
		ents, err := f.readDir(ino)
		if err != nil {
			return err
		}
		names := map[uint64]bool{}
		for _, e := range ents {
			if e.Name == 0 {
				return fmt.Errorf("fsck: zero name in directory %d", inum)
			}
			if names[e.Name] {
				return fmt.Errorf("fsck: duplicate name %d in directory %d", e.Name, inum)
			}
			names[e.Name] = true
			if !allocated[e.Inum] {
				return fmt.Errorf("fsck: entry %d in directory %d points at free inode %d", e.Name, inum, e.Inum)
			}
			if err := walk(e.Inum); err != nil {
				return err
			}
		}
		return nil
	}
	rootIno, err := f.itable.Get(RootInum)
	if err != nil {
		return err
	}
	if rootIno.Type != inode.Dir {
		return fmt.Errorf("fsck: root is not a directory")
	}
	if err := walk(RootInum); err != nil {
		return err
	}
	for i := range allocated {
		if !seen[i] {
			return fmt.Errorf("fsck: inode %d allocated but unreachable", i)
		}
	}
	return nil
}
