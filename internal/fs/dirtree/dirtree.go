// Package dirtree is the file-system facade: directories, pathname
// resolution, and whole-file reads/writes on top of the WAL, the bitmap
// allocator, and the inode table — the layer FSCQ's DirTree.v verifies.
// Every operation is one WAL transaction, so a crash at any point leaves
// the tree in either its pre- or post-operation state.
package dirtree

import (
	"errors"
	"fmt"

	"llmfscq/internal/fs/balloc"
	"llmfscq/internal/fs/disk"
	"llmfscq/internal/fs/inode"
	"llmfscq/internal/fs/wal"
)

// Geometry fixes the on-disk layout inside the WAL data region.
type Geometry struct {
	LogEntries int // WAL capacity
	NInodes    int
	NBlocks    int // file blocks managed by the allocator
}

// DefaultGeometry is comfortable for tests and examples.
var DefaultGeometry = Geometry{LogEntries: 128, NInodes: 24, NBlocks: 160}

// magic identifies a formatted file system.
const magic uint64 = 0xf5c9_0001

// RootInum is the root directory's inode number.
const RootInum = 0

// FS is a mounted file system.
type FS struct {
	geo    Geometry
	disk   *disk.Disk
	log    *wal.Log
	alloc  *balloc.Alloc
	itable *inode.Table
}

// DiskBlocks returns the total disk size a geometry needs.
func DiskBlocks(g Geometry) int {
	data := 1 + g.NBlocks + inode.RegionWords(g.NInodes) + g.NBlocks
	return 1 + 2*g.LogEntries + data
}

// layout offsets within the data region.
func (f *FS) superAt() int  { return 0 }
func (f *FS) bitmapAt() int { return 1 }
func (f *FS) itableAt() int { return 1 + f.geo.NBlocks }
func (f *FS) blocksAt() int { return 1 + f.geo.NBlocks + inode.RegionWords(f.geo.NInodes) }

func mount(d *disk.Disk, g Geometry, l *wal.Log) (*FS, error) {
	f := &FS{geo: g, disk: d, log: l}
	a, err := balloc.New(l, f.bitmapAt(), g.NBlocks, f.blocksAt())
	if err != nil {
		return nil, err
	}
	t, err := inode.New(l, f.itableAt(), g.NInodes)
	if err != nil {
		return nil, err
	}
	f.alloc = a
	f.itable = t
	return f, nil
}

// Mkfs formats a fresh disk and mounts it: writes the superblock and the
// root directory in one transaction.
func Mkfs(d *disk.Disk, g Geometry) (*FS, error) {
	l, err := wal.New(d, g.LogEntries)
	if err != nil {
		return nil, err
	}
	f, err := mount(d, g, l)
	if err != nil {
		return nil, err
	}
	if err := l.Write(f.superAt(), magic); err != nil {
		return nil, err
	}
	root := inode.Inode{Num: RootInum, Type: inode.Dir}
	if err := f.itable.Put(root); err != nil {
		return nil, err
	}
	if err := l.Commit(); err != nil {
		return nil, err
	}
	return f, nil
}

// Mount recovers a (possibly crashed) formatted disk.
func Mount(d *disk.Disk, g Geometry) (*FS, error) {
	l, err := wal.Recover(d, g.LogEntries)
	if err != nil {
		return nil, err
	}
	f, err := mount(d, g, l)
	if err != nil {
		return nil, err
	}
	m, err := l.Read(f.superAt())
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errors.New("dirtree: not a formatted disk")
	}
	return f, nil
}

// Disk exposes the underlying device (for crash-injection tests).
func (f *FS) Disk() *disk.Disk { return f.disk }

// Alloc exposes the block allocator (for invariant checks).
func (f *FS) Alloc() *balloc.Alloc { return f.alloc }

// ---------------------------------------------------------------------------
// Directory entries: each entry occupies two consecutive block slots of the
// directory file: a nonzero name word and an inode number word.

// DirEntry is one directory entry.
type DirEntry struct {
	Name uint64
	Inum int
}

// readDir lists a directory inode's entries.
func (f *FS) readDir(ino inode.Inode) ([]DirEntry, error) {
	if ino.Type != inode.Dir {
		return nil, fmt.Errorf("dirtree: inode %d is not a directory", ino.Num)
	}
	if ino.Size%2 != 0 {
		return nil, fmt.Errorf("dirtree: corrupt directory size %d", ino.Size)
	}
	var out []DirEntry
	for k := 0; k+1 < ino.Size; k += 2 {
		name, err := f.log.Read(ino.Blocks[k])
		if err != nil {
			return nil, err
		}
		in, err := f.log.Read(ino.Blocks[k+1])
		if err != nil {
			return nil, err
		}
		out = append(out, DirEntry{Name: name, Inum: int(in)})
	}
	return out, nil
}

// ReadDir lists the entries of the directory at inum.
func (f *FS) ReadDir(inum int) ([]DirEntry, error) {
	ino, err := f.itable.Get(inum)
	if err != nil {
		return nil, err
	}
	return f.readDir(ino)
}

// lookupIn finds name within a directory inode.
func (f *FS) lookupIn(ino inode.Inode, name uint64) (int, bool, error) {
	ents, err := f.readDir(ino)
	if err != nil {
		return 0, false, err
	}
	for _, e := range ents {
		if e.Name == name {
			return e.Inum, true, nil
		}
	}
	return 0, false, nil
}

// Lookup resolves a pathname (a sequence of name words) from the root,
// returning the inode number.
func (f *FS) Lookup(path []uint64) (int, error) {
	cur := RootInum
	for _, name := range path {
		ino, err := f.itable.Get(cur)
		if err != nil {
			return 0, err
		}
		next, ok, err := f.lookupIn(ino, name)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("dirtree: name %d not found", name)
		}
		cur = next
	}
	return cur, nil
}

// addEntry appends (name, inum) to a directory, allocating the two entry
// blocks.
func (f *FS) addEntry(dirInum int, name uint64, target int) error {
	if name == 0 {
		return errors.New("dirtree: zero is not a valid name")
	}
	ino, err := f.itable.Get(dirInum)
	if err != nil {
		return err
	}
	if _, exists, err := f.lookupIn(ino, name); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("dirtree: name %d already exists", name)
	}
	if ino.Size+2 > inode.NDirect {
		return errors.New("dirtree: directory full")
	}
	b1, err := f.alloc.Alloc()
	if err != nil {
		return err
	}
	b2, err := f.alloc.Alloc()
	if err != nil {
		return err
	}
	if err := f.log.Write(b1, name); err != nil {
		return err
	}
	if err := f.log.Write(b2, uint64(target)); err != nil {
		return err
	}
	ino.Blocks[ino.Size] = b1
	ino.Blocks[ino.Size+1] = b2
	ino.Size += 2
	return f.itable.Put(ino)
}

// create allocates an inode of type ty and links it under the parent
// directory, as one transaction.
func (f *FS) create(parent []uint64, name uint64, ty uint64) (int, error) {
	dirInum, err := f.Lookup(parent)
	if err != nil {
		f.log.Abort()
		return 0, err
	}
	ino, err := f.itable.Alloc(ty)
	if err != nil {
		f.log.Abort()
		return 0, err
	}
	if err := f.addEntry(dirInum, name, ino.Num); err != nil {
		f.log.Abort()
		return 0, err
	}
	if err := f.log.Commit(); err != nil {
		return 0, err
	}
	return ino.Num, nil
}

// Create makes a new empty file under the parent directory path.
func (f *FS) Create(parent []uint64, name uint64) (int, error) {
	return f.create(parent, name, inode.File)
}

// Mkdir makes a new empty directory under the parent directory path.
func (f *FS) Mkdir(parent []uint64, name uint64) (int, error) {
	return f.create(parent, name, inode.Dir)
}

// WriteFile replaces the contents of the file at inum with data (one word
// per block), resizing as needed, in one transaction.
func (f *FS) WriteFile(inum int, data []uint64) error {
	ino, err := f.itable.Get(inum)
	if err != nil {
		f.log.Abort()
		return err
	}
	if ino.Type != inode.File {
		f.log.Abort()
		return fmt.Errorf("dirtree: inode %d is not a file", inum)
	}
	if len(data) > inode.NDirect {
		f.log.Abort()
		return fmt.Errorf("dirtree: file too large: %d blocks", len(data))
	}
	// Shrink: free surplus blocks.
	for k := len(data); k < ino.Size; k++ {
		if err := f.alloc.Free(ino.Blocks[k]); err != nil {
			f.log.Abort()
			return err
		}
		ino.Blocks[k] = 0
	}
	// Grow: allocate missing blocks.
	for k := ino.Size; k < len(data); k++ {
		b, err := f.alloc.Alloc()
		if err != nil {
			f.log.Abort()
			return err
		}
		ino.Blocks[k] = b
	}
	for k, v := range data {
		if err := f.log.Write(ino.Blocks[k], v); err != nil {
			f.log.Abort()
			return err
		}
	}
	ino.Size = len(data)
	if err := f.itable.Put(ino); err != nil {
		f.log.Abort()
		return err
	}
	return f.log.Commit()
}

// ReadFile returns the contents of the file at inum.
func (f *FS) ReadFile(inum int) ([]uint64, error) {
	ino, err := f.itable.Get(inum)
	if err != nil {
		return nil, err
	}
	if ino.Type != inode.File {
		return nil, fmt.Errorf("dirtree: inode %d is not a file", inum)
	}
	out := make([]uint64, ino.Size)
	for k := 0; k < ino.Size; k++ {
		v, err := f.log.Read(ino.Blocks[k])
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// Unlink removes name from the parent directory and frees the target's
// inode and blocks (the target must be a file or an empty directory), in
// one transaction.
func (f *FS) Unlink(parent []uint64, name uint64) error {
	dirInum, err := f.Lookup(parent)
	if err != nil {
		f.log.Abort()
		return err
	}
	ino, err := f.itable.Get(dirInum)
	if err != nil {
		f.log.Abort()
		return err
	}
	ents, err := f.readDir(ino)
	if err != nil {
		f.log.Abort()
		return err
	}
	idx := -1
	for i, e := range ents {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		f.log.Abort()
		return fmt.Errorf("dirtree: name %d not found", name)
	}
	target, err := f.itable.Get(ents[idx].Inum)
	if err != nil {
		f.log.Abort()
		return err
	}
	if target.Type == inode.Dir && target.Size > 0 {
		f.log.Abort()
		return errors.New("dirtree: directory not empty")
	}
	// Free the target's data blocks and inode.
	for k := 0; k < target.Size; k++ {
		if err := f.alloc.Free(target.Blocks[k]); err != nil {
			f.log.Abort()
			return err
		}
	}
	if err := f.itable.FreeInode(target.Num); err != nil {
		f.log.Abort()
		return err
	}
	// Remove the entry: free its blocks and compact by moving the last
	// entry into the hole.
	if err := f.alloc.Free(ino.Blocks[2*idx]); err != nil {
		f.log.Abort()
		return err
	}
	if err := f.alloc.Free(ino.Blocks[2*idx+1]); err != nil {
		f.log.Abort()
		return err
	}
	last := ino.Size/2 - 1
	if idx != last {
		ino.Blocks[2*idx] = ino.Blocks[2*last]
		ino.Blocks[2*idx+1] = ino.Blocks[2*last+1]
	}
	ino.Blocks[2*last] = 0
	ino.Blocks[2*last+1] = 0
	ino.Size -= 2
	if err := f.itable.Put(ino); err != nil {
		f.log.Abort()
		return err
	}
	return f.log.Commit()
}

// lookupChain resolves a path, returning every inode number along the way
// (including the root and the final target).
func (f *FS) lookupChain(path []uint64) ([]int, error) {
	chain := []int{RootInum}
	cur := RootInum
	for _, name := range path {
		ino, err := f.itable.Get(cur)
		if err != nil {
			return nil, err
		}
		next, ok, err := f.lookupIn(ino, name)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("dirtree: name %d not found", name)
		}
		cur = next
		chain = append(chain, cur)
	}
	return chain, nil
}

// removeEntry unlinks (name -> inum) from a directory without touching the
// target inode, freeing the entry blocks and compacting.
func (f *FS) removeEntry(dirInum int, name uint64) (int, error) {
	ino, err := f.itable.Get(dirInum)
	if err != nil {
		return 0, err
	}
	ents, err := f.readDir(ino)
	if err != nil {
		return 0, err
	}
	idx := -1
	for i, e := range ents {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("dirtree: name %d not found", name)
	}
	target := ents[idx].Inum
	if err := f.alloc.Free(ino.Blocks[2*idx]); err != nil {
		return 0, err
	}
	if err := f.alloc.Free(ino.Blocks[2*idx+1]); err != nil {
		return 0, err
	}
	last := ino.Size/2 - 1
	if idx != last {
		ino.Blocks[2*idx] = ino.Blocks[2*last]
		ino.Blocks[2*idx+1] = ino.Blocks[2*last+1]
	}
	ino.Blocks[2*last] = 0
	ino.Blocks[2*last+1] = 0
	ino.Size -= 2
	if err := f.itable.Put(ino); err != nil {
		return 0, err
	}
	return target, nil
}

// Rename moves srcName under srcParent to dstName under dstParent, in one
// transaction. Moving a directory into its own subtree is rejected (it
// would disconnect the tree), as is an existing destination name.
func (f *FS) Rename(srcParent []uint64, srcName uint64, dstParent []uint64, dstName uint64) error {
	srcDir, err := f.Lookup(srcParent)
	if err != nil {
		f.log.Abort()
		return err
	}
	srcIno, err := f.itable.Get(srcDir)
	if err != nil {
		f.log.Abort()
		return err
	}
	moved, ok, err := f.lookupIn(srcIno, srcName)
	if err != nil {
		f.log.Abort()
		return err
	}
	if !ok {
		f.log.Abort()
		return fmt.Errorf("dirtree: name %d not found", srcName)
	}
	dstChain, err := f.lookupChain(dstParent)
	if err != nil {
		f.log.Abort()
		return err
	}
	for _, inum := range dstChain {
		if inum == moved {
			f.log.Abort()
			return errors.New("dirtree: cannot move a directory into its own subtree")
		}
	}
	dstDir := dstChain[len(dstChain)-1]
	if _, err := f.removeEntry(srcDir, srcName); err != nil {
		f.log.Abort()
		return err
	}
	if err := f.addEntry(dstDir, dstName, moved); err != nil {
		f.log.Abort()
		return err
	}
	return f.log.Commit()
}
