package dirtree

import (
	"fmt"
	"sort"
	"strings"

	"llmfscq/internal/fs/inode"
)

// DumpTree renders the whole tree (names, types, file contents) as a
// canonical string — used by crash tests to compare observable states and
// by the examples for display.
func (f *FS) DumpTree() (string, error) {
	var b strings.Builder
	var walk func(inum int, path string) error
	walk = func(inum int, path string) error {
		ino, err := f.itable.Get(inum)
		if err != nil {
			return err
		}
		switch ino.Type {
		case inode.Dir:
			fmt.Fprintf(&b, "dir  %s\n", path)
			ents, err := f.readDir(ino)
			if err != nil {
				return err
			}
			sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
			for _, e := range ents {
				if err := walk(e.Inum, fmt.Sprintf("%s/%d", path, e.Name)); err != nil {
					return err
				}
			}
		case inode.File:
			data, err := f.ReadFile(inum)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "file %s = %v\n", path, data)
		default:
			fmt.Fprintf(&b, "??? %s type=%d\n", path, ino.Type)
		}
		return nil
	}
	if err := walk(RootInum, ""); err != nil {
		return "", err
	}
	return b.String(), nil
}
