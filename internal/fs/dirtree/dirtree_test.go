package dirtree

import (
	"math/rand"
	"strings"
	"testing"

	"llmfscq/internal/fs/disk"
)

func mkfs(t *testing.T) *FS {
	t.Helper()
	d := disk.New(DiskBlocks(DefaultGeometry))
	f, err := Mkfs(d, DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMkfsMount(t *testing.T) {
	f := mkfs(t)
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
	g, err := Mount(f.Disk(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Fsck(); err != nil {
		t.Fatal(err)
	}
	inum, err := g.Lookup(nil)
	if err != nil || inum != RootInum {
		t.Fatalf("root lookup: %d, %v", inum, err)
	}
}

func TestMountUnformatted(t *testing.T) {
	d := disk.New(DiskBlocks(DefaultGeometry))
	if _, err := Mount(d, DefaultGeometry); err == nil {
		t.Fatal("mounted an unformatted disk")
	}
}

func TestCreateWriteRead(t *testing.T) {
	f := mkfs(t)
	inum, err := f.Create(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := []uint64{10, 20, 30}
	if err := f.WriteFile(inum, data); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile(inum)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("read back %v", got)
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
	// Rewrite smaller: blocks must be freed, not leaked.
	if err := f.WriteFile(inum, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirNested(t *testing.T) {
	f := mkfs(t)
	if _, err := f.Mkdir(nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Mkdir([]uint64{1}, 2); err != nil {
		t.Fatal(err)
	}
	inum, err := f.Create([]uint64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Lookup([]uint64{1, 2, 3})
	if err != nil || got != inum {
		t.Fatalf("lookup: %d, %v", got, err)
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	f := mkfs(t)
	if _, err := f.Create(nil, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create(nil, 5); err == nil {
		t.Fatal("duplicate name accepted (tree_names_distinct violated)")
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlink(t *testing.T) {
	f := mkfs(t)
	inum, err := f.Create(nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile(inum, []uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	free0, _ := f.Alloc().CountFree()
	if err := f.Unlink(nil, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup([]uint64{9}); err == nil {
		t.Fatal("unlinked name still resolves")
	}
	free1, _ := f.Alloc().CountFree()
	if free1 != free0+6 { // 4 data blocks + 2 entry blocks
		t.Fatalf("blocks leaked: %d -> %d", free0, free1)
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkNonEmptyDirRejected(t *testing.T) {
	f := mkfs(t)
	if _, err := f.Mkdir(nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create([]uint64{1}, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, 1); err == nil {
		t.Fatal("removed a non-empty directory")
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

// scriptOp is one step of the crash-sweep workload.
type scriptOp func(f *FS) error

func workload() []scriptOp {
	return []scriptOp{
		func(f *FS) error { _, err := f.Mkdir(nil, 1); return err },
		func(f *FS) error { _, err := f.Create(nil, 2); return err },
		func(f *FS) error {
			inum, err := f.Lookup([]uint64{2})
			if err != nil {
				return err
			}
			return f.WriteFile(inum, []uint64{11, 22, 33})
		},
		func(f *FS) error { _, err := f.Create([]uint64{1}, 3); return err },
		func(f *FS) error {
			inum, err := f.Lookup([]uint64{1, 3})
			if err != nil {
				return err
			}
			return f.WriteFile(inum, []uint64{7})
		},
		func(f *FS) error {
			inum, err := f.Lookup([]uint64{2})
			if err != nil {
				return err
			}
			return f.WriteFile(inum, []uint64{9, 9})
		},
		func(f *FS) error { return f.Unlink([]uint64{1}, 3) },
		func(f *FS) error { return f.Unlink(nil, 2) },
	}
}

// buildTo replays the workload prefix [0,k) on a fresh file system.
func buildTo(t *testing.T, k int) *FS {
	t.Helper()
	f := mkfs(t)
	ops := workload()
	for i := 0; i < k; i++ {
		if err := ops[i](f); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return f
}

// TestCrashSweep is the headline crash-safety property, the dynamic
// analogue of FSCQ's whole-system theorem: for every operation of the
// workload, every write-level crash point during it, and several
// materializations of the disk nondeterminism, mounting the crashed disk
// yields a file system that (a) passes Fsck and (b) is observably either
// the pre-operation or the post-operation tree.
func TestCrashSweep(t *testing.T) {
	ops := workload()
	for opIdx := range ops {
		pre, err := buildTo(t, opIdx).DumpTree()
		if err != nil {
			t.Fatal(err)
		}
		post, err := buildTo(t, opIdx+1).DumpTree()
		if err != nil {
			t.Fatal(err)
		}
		for failAfter := 0; ; failAfter++ {
			f := buildTo(t, opIdx)
			f.Disk().FailAfter(failAfter)
			opErr := ops[opIdx](f)
			if !f.Disk().Crashed() {
				if opErr != nil {
					t.Fatalf("op %d failed without crash: %v", opIdx, opErr)
				}
				break // crash point beyond the operation; sweep done
			}
			for seed := int64(0); seed < 4; seed++ {
				crashed := f.Disk().Crash(rand.New(rand.NewSource(seed*31 + int64(failAfter))))
				g, err := Mount(crashed, DefaultGeometry)
				if err != nil {
					t.Fatalf("op %d failAfter %d: mount: %v", opIdx, failAfter, err)
				}
				if err := g.Fsck(); err != nil {
					t.Fatalf("op %d failAfter %d seed %d: fsck: %v", opIdx, failAfter, seed, err)
				}
				dump, err := g.DumpTree()
				if err != nil {
					t.Fatal(err)
				}
				if dump != pre && dump != post {
					t.Fatalf("op %d failAfter %d seed %d: non-atomic tree:\n%s\npre:\n%s\npost:\n%s",
						opIdx, failAfter, seed, dump, pre, post)
				}
			}
			// f.Disk().Crash above invalidates f; next iteration rebuilds.
		}
	}
}

// TestDumpStable checks DumpTree is canonical (sorted) so crash comparisons
// are order-insensitive.
func TestDumpStable(t *testing.T) {
	f := mkfs(t)
	if _, err := f.Create(nil, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create(nil, 3); err != nil {
		t.Fatal(err)
	}
	dump, err := f.DumpTree()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "/3") || strings.Index(dump, "/3") > strings.Index(dump, "/5") {
		t.Fatalf("dump not sorted:\n%s", dump)
	}
}

func TestRename(t *testing.T) {
	f := mkfs(t)
	if _, err := f.Mkdir(nil, 1); err != nil {
		t.Fatal(err)
	}
	inum, err := f.Create(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile(inum, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	// Move /2 to /1/7.
	if err := f.Rename(nil, 2, []uint64{1}, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup([]uint64{2}); err == nil {
		t.Fatal("source name still resolves")
	}
	got, err := f.Lookup([]uint64{1, 7})
	if err != nil || got != inum {
		t.Fatalf("moved file: %d %v", got, err)
	}
	data, err := f.ReadFile(got)
	if err != nil || len(data) != 1 || data[0] != 5 {
		t.Fatalf("contents after rename: %v %v", data, err)
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameRejectsCycle(t *testing.T) {
	f := mkfs(t)
	if _, err := f.Mkdir(nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Mkdir([]uint64{1}, 2); err != nil {
		t.Fatal(err)
	}
	// Moving /1 into /1/2 would disconnect the tree.
	if err := f.Rename(nil, 1, []uint64{1, 2}, 3); err == nil {
		t.Fatal("cycle-creating rename accepted")
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameRejectsExistingDst(t *testing.T) {
	f := mkfs(t)
	if _, err := f.Create(nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create(nil, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(nil, 1, nil, 2); err == nil {
		t.Fatal("rename onto existing name accepted")
	}
	if err := f.Fsck(); err != nil {
		t.Fatal(err)
	}
}

// Rename participates in the crash-atomicity guarantee.
func TestRenameCrashAtomic(t *testing.T) {
	build := func() *FS {
		f := mkfs(t)
		if _, err := f.Mkdir(nil, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Create(nil, 2); err != nil {
			t.Fatal(err)
		}
		return f
	}
	pre, _ := build().DumpTree()
	f0 := build()
	if err := f0.Rename(nil, 2, []uint64{1}, 9); err != nil {
		t.Fatal(err)
	}
	post, _ := f0.DumpTree()
	for failAfter := 0; ; failAfter++ {
		f := build()
		f.Disk().FailAfter(failAfter)
		err := f.Rename(nil, 2, []uint64{1}, 9)
		if !f.Disk().Crashed() {
			if err != nil {
				t.Fatalf("rename failed without crash: %v", err)
			}
			break
		}
		for seed := int64(0); seed < 3; seed++ {
			crashed := f.Disk().Crash(rand.New(rand.NewSource(seed + int64(failAfter))))
			g, err := Mount(crashed, DefaultGeometry)
			if err != nil {
				t.Fatalf("mount: %v", err)
			}
			if err := g.Fsck(); err != nil {
				t.Fatalf("failAfter %d seed %d: fsck: %v", failAfter, seed, err)
			}
			dump, _ := g.DumpTree()
			if dump != pre && dump != post {
				t.Fatalf("failAfter %d: non-atomic rename:\n%s", failAfter, dump)
			}
		}
	}
}
