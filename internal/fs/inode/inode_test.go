package inode

import (
	"testing"

	"llmfscq/internal/fs/disk"
	"llmfscq/internal/fs/wal"
)

func newTable(t *testing.T, count int) *Table {
	t.Helper()
	d := disk.New(1 + 2*64 + RegionWords(count))
	l, err := wal.New(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := New(l, 0, count)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestGetPutRoundTrip(t *testing.T) {
	tbl := newTable(t, 4)
	ino := Inode{Num: 2, Type: File, Size: 3}
	ino.Blocks[0], ino.Blocks[1], ino.Blocks[2] = 10, 11, 12
	if err := tbl.Put(ino); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != File || got.Size != 3 || got.Blocks[1] != 11 {
		t.Fatalf("round trip: %+v", got)
	}
	// Untouched inodes stay free.
	other, _ := tbl.Get(1)
	if other.Type != Free {
		t.Fatalf("inode 1: %+v", other)
	}
}

func TestAllocFree(t *testing.T) {
	tbl := newTable(t, 2)
	a, err := tbl.Alloc(Dir)
	if err != nil || a.Num != 0 || a.Type != Dir {
		t.Fatalf("%+v %v", a, err)
	}
	b, err := tbl.Alloc(File)
	if err != nil || b.Num != 1 {
		t.Fatalf("%+v %v", b, err)
	}
	if _, err := tbl.Alloc(File); err != ErrNoInodes {
		t.Fatalf("expected ErrNoInodes, got %v", err)
	}
	if err := tbl.FreeInode(0); err != nil {
		t.Fatal(err)
	}
	c, err := tbl.Alloc(File)
	if err != nil || c.Num != 0 {
		t.Fatalf("freed inode not reused: %+v %v", c, err)
	}
}

func TestBounds(t *testing.T) {
	tbl := newTable(t, 2)
	if _, err := tbl.Get(2); err == nil {
		t.Fatal("out-of-range get accepted")
	}
	if err := tbl.Put(Inode{Num: -1}); err == nil {
		t.Fatal("negative put accepted")
	}
	if err := tbl.Put(Inode{Num: 0, Size: NDirect + 1}); err == nil {
		t.Fatal("oversized inode accepted")
	}
}
