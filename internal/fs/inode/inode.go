// Package inode implements the inode table: fixed-size records mapping an
// inode number to a type, a size, and direct block addresses — the layer
// FSCQ's Inode.v verifies. All access goes through the caller's open WAL
// transaction.
package inode

import (
	"errors"
	"fmt"

	"llmfscq/internal/fs/wal"
)

// Type tags stored in the first inode word.
const (
	Free uint64 = 0
	File uint64 = 1
	Dir  uint64 = 2
)

// NDirect is the number of direct block slots per inode.
const NDirect = 16

// words per on-disk inode record: type, size, NDirect block addrs.
const recWords = 2 + NDirect

// Inode is the in-memory view of one record.
type Inode struct {
	Num    int
	Type   uint64
	Size   int // used block slots
	Blocks [NDirect]int
}

// Table manages the inode region [start, start+count*recWords) of the WAL
// data region.
type Table struct {
	log   *wal.Log
	start int
	count int
}

// ErrNoInodes is returned when every inode is in use.
var ErrNoInodes = errors.New("inode: no free inodes")

// New mounts a table of count inodes at start.
func New(log *wal.Log, start, count int) (*Table, error) {
	if start < 0 || start+count*recWords > log.DataSize() {
		return nil, fmt.Errorf("inode: table out of data region")
	}
	return &Table{log: log, start: start, count: count}, nil
}

// Count returns the table capacity.
func (t *Table) Count() int { return t.count }

// RegionWords returns the number of data-region words a table of count
// inodes occupies.
func RegionWords(count int) int { return count * recWords }

// Get reads inode i.
func (t *Table) Get(i int) (Inode, error) {
	if i < 0 || i >= t.count {
		return Inode{}, fmt.Errorf("inode: number out of range: %d", i)
	}
	base := t.start + i*recWords
	ty, err := t.log.Read(base)
	if err != nil {
		return Inode{}, err
	}
	sz, err := t.log.Read(base + 1)
	if err != nil {
		return Inode{}, err
	}
	ino := Inode{Num: i, Type: ty, Size: int(sz)}
	if ino.Size > NDirect {
		return Inode{}, fmt.Errorf("inode: corrupt size %d", ino.Size)
	}
	for k := 0; k < NDirect; k++ {
		b, err := t.log.Read(base + 2 + k)
		if err != nil {
			return Inode{}, err
		}
		ino.Blocks[k] = int(b)
	}
	return ino, nil
}

// Put writes inode i.
func (t *Table) Put(ino Inode) error {
	if ino.Num < 0 || ino.Num >= t.count {
		return fmt.Errorf("inode: number out of range: %d", ino.Num)
	}
	if ino.Size < 0 || ino.Size > NDirect {
		return fmt.Errorf("inode: size out of range: %d", ino.Size)
	}
	base := t.start + ino.Num*recWords
	if err := t.log.Write(base, ino.Type); err != nil {
		return err
	}
	if err := t.log.Write(base+1, uint64(ino.Size)); err != nil {
		return err
	}
	for k := 0; k < NDirect; k++ {
		if err := t.log.Write(base+2+k, uint64(ino.Blocks[k])); err != nil {
			return err
		}
	}
	return nil
}

// Alloc finds a free inode, stamps its type, and returns it.
func (t *Table) Alloc(ty uint64) (Inode, error) {
	for i := 0; i < t.count; i++ {
		ino, err := t.Get(i)
		if err != nil {
			return Inode{}, err
		}
		if ino.Type == Free {
			ino.Type = ty
			ino.Size = 0
			ino.Blocks = [NDirect]int{}
			if err := t.Put(ino); err != nil {
				return Inode{}, err
			}
			return ino, nil
		}
	}
	return Inode{}, ErrNoInodes
}

// FreeInode clears inode i.
func (t *Table) FreeInode(i int) error {
	ino, err := t.Get(i)
	if err != nil {
		return err
	}
	ino.Type = Free
	ino.Size = 0
	ino.Blocks = [NDirect]int{}
	return t.Put(ino)
}
