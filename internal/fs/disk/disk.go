// Package disk simulates an asynchronous block device with the crash model
// FSCQ verifies against: writes become volatile immediately, a sync barrier
// makes them durable, and a crash preserves every synced write while each
// unsynced write is independently either applied or lost.
//
// Fault injection is deterministic: FailAfter arms a crash at the N-th
// write, letting tests sweep every crash point of an operation.
package disk

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrCrashed is returned once the armed crash point has been reached; all
// subsequent operations fail until the crash is materialized with Crash.
var ErrCrashed = errors.New("disk: crashed")

// Disk is a simulated block device of fixed size. Block values are uint64
// words (a "block" holds one word; callers build records from runs of
// blocks).
type Disk struct {
	volatile []uint64
	synced   []uint64
	dirty    map[int]bool

	writes    int
	failAfter int // crash when writes reaches this count; <0 disarmed
	crashed   bool

	// Stats
	Reads, Writes, Syncs int
}

// New creates a zeroed disk with n blocks.
func New(n int) *Disk {
	return &Disk{
		volatile:  make([]uint64, n),
		synced:    make([]uint64, n),
		dirty:     map[int]bool{},
		failAfter: -1,
	}
}

// Size returns the number of blocks.
func (d *Disk) Size() int { return len(d.volatile) }

// Read returns the volatile contents of block a.
func (d *Disk) Read(a int) (uint64, error) {
	if d.crashed {
		return 0, ErrCrashed
	}
	if a < 0 || a >= len(d.volatile) {
		return 0, fmt.Errorf("disk: read out of range: %d", a)
	}
	d.Reads++
	return d.volatile[a], nil
}

// Write stores v into block a (volatile until the next Sync).
func (d *Disk) Write(a int, v uint64) error {
	if d.crashed {
		return ErrCrashed
	}
	if a < 0 || a >= len(d.volatile) {
		return fmt.Errorf("disk: write out of range: %d", a)
	}
	if d.failAfter >= 0 && d.writes >= d.failAfter {
		d.crashed = true
		return ErrCrashed
	}
	d.writes++
	d.Writes++
	d.volatile[a] = v
	d.dirty[a] = true
	return nil
}

// Sync makes all volatile writes durable.
func (d *Disk) Sync() error {
	if d.crashed {
		return ErrCrashed
	}
	d.Syncs++
	for a := range d.dirty {
		d.synced[a] = d.volatile[a]
	}
	d.dirty = map[int]bool{}
	return nil
}

// FailAfter arms a crash at the n-th subsequent write (0 = the very next
// write fails). A negative n disarms.
func (d *Disk) FailAfter(n int) {
	d.writes = 0
	d.failAfter = n
}

// Crashed reports whether the armed crash point has been hit.
func (d *Disk) Crashed() bool { return d.crashed }

// Crash materializes a crash: it returns a fresh disk whose contents are
// the synced state plus an rng-chosen subset of the unsynced writes — the
// standard asynchronous-disk crash nondeterminism. The receiver is left
// unusable.
func (d *Disk) Crash(rng *rand.Rand) *Disk {
	nd := New(len(d.volatile))
	copy(nd.volatile, d.synced)
	for a := range d.dirty {
		if rng.Intn(2) == 1 {
			nd.volatile[a] = d.volatile[a]
		}
	}
	copy(nd.synced, nd.volatile)
	d.crashed = true
	return nd
}

// Snapshot copies the volatile contents (for test assertions).
func (d *Disk) Snapshot() []uint64 {
	out := make([]uint64, len(d.volatile))
	copy(out, d.volatile)
	return out
}
