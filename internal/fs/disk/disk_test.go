package disk

import (
	"math/rand"
	"testing"
)

func TestReadWriteSync(t *testing.T) {
	d := New(8)
	if err := d.Write(3, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Read(3); v != 42 {
		t.Fatalf("read %d", v)
	}
	if _, err := d.Read(8); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := d.Write(-1, 0); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashLosesOnlyUnsynced(t *testing.T) {
	d := New(8)
	for i := 0; i < 8; i++ {
		if err := d.Write(i, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced overwrite of block 0.
	if err := d.Write(0, 999); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		d2 := New(8)
		for i := 0; i < 8; i++ {
			_ = d2.Write(i, uint64(100+i))
		}
		_ = d2.Sync()
		_ = d2.Write(0, 999)
		nd := d2.Crash(rand.New(rand.NewSource(seed)))
		v, err := nd.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if v != 100 && v != 999 {
			t.Fatalf("block 0 is %d, expected old or new value", v)
		}
		for i := 1; i < 8; i++ {
			if v, _ := nd.Read(i); v != uint64(100+i) {
				t.Fatalf("synced block %d lost: %d", i, v)
			}
		}
	}
}

func TestFailAfter(t *testing.T) {
	d := New(4)
	d.FailAfter(2)
	if err := d.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(2, 1); err != ErrCrashed {
		t.Fatalf("expected crash, got %v", err)
	}
	if !d.Crashed() {
		t.Fatal("not marked crashed")
	}
	if _, err := d.Read(0); err != ErrCrashed {
		t.Fatal("reads allowed after crash")
	}
	if err := d.Sync(); err != ErrCrashed {
		t.Fatal("sync allowed after crash")
	}
}
