module llmfscq

go 1.22
