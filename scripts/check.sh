#!/bin/sh
# Extended verification gate: everything the tier-1 gate runs, plus go vet,
# the race detector, and the repository's own static analyzers (cmd/lint).
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

# The golden determinism test is the load-bearing regression for the
# performance layer (shared caches + grid scheduler); run it explicitly
# under the race detector so a green gate always implies a racing-free,
# schedule-independent sweep even if the package list above changes.
echo "==> go test -race -run TestGoldenDeterminism ./internal/eval"
go test -race -run 'TestGoldenDeterminism$' ./internal/eval

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "check: all gates passed"
