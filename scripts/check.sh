#!/bin/sh
# Extended verification gate: everything the tier-1 gate runs, plus go vet,
# the race detector, and the repository's own static analyzers (cmd/lint).
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "check: all gates passed"
