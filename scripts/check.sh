#!/bin/sh
# Extended verification gate: everything the tier-1 gate runs, plus go vet,
# the race detector, and the repository's own static analyzers (cmd/lint).
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

# The golden determinism test is the load-bearing regression for the
# performance layer (shared caches + grid scheduler); run it explicitly
# under the race detector so a green gate always implies a racing-free,
# schedule-independent sweep even if the package list above changes.
echo "==> go test -race -run TestGoldenDeterminism ./internal/eval"
go test -race -run 'TestGoldenDeterminism$' ./internal/eval

# The search-mode equivalence test is the load-bearing regression for the
# intra-search parallelism layer (worker-pool expansion, cross-search Try
# memoization, batched wire execution): every mode must produce the exact
# Result the serial search produces, under the race detector.
echo "==> go test -race -run TestSearchModeEquivalence ./internal/core"
go test -race -run 'TestSearchModeEquivalence$' ./internal/core

# The conformance + chaos suite is the load-bearing regression for the
# remote backend (mirror execution, retry/resurrection, breaker): run the
# wire conformance and chaos-determinism tests explicitly under the race
# detector, plus the grid-level backend equivalence test.
echo "==> go test -race -run 'Conformance|Chaos|Breaker' ./internal/remote"
go test -race -run 'Conformance|Chaos|Breaker' ./internal/remote

echo "==> go test -race -run TestBackendEquivalence ./internal/eval"
go test -race -run 'TestBackendEquivalence$' ./internal/eval

# The distributed-sweep suite is the load-bearing regression for the
# coordinator (work-stealing shards, health quarantine, straggler
# re-dispatch, stranded fallback): the grid sharded over a worker fleet —
# healthy, chaotic, or fully dead — must merge to the single-process
# outcomes exactly, under the race detector.
echo "==> go test -race -run 'TestDistributed|TestStranded' ./internal/sweep"
go test -race -run 'TestDistributed|TestStranded' ./internal/sweep

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

# The typed tier alone, pinned against the ratchet baseline: any hot-path
# allocation, kernel mutation, atomic/plain mix, or dropped error that is
# not already frozen in lint_baseline.json fails the gate.
echo "==> go run ./cmd/lint -family typed -baseline lint_baseline.json ./..."
go run ./cmd/lint -family typed -baseline lint_baseline.json ./...

# The allocs/op ratchet: the frozen hot-path-allocation debt may only
# shrink. 301 was the count when the persistent proof cache landed (the
# mirror cross-check runs on the hot path, allocation-free); a PR that
# pushes it back up must instead fix the allocation it introduced.
hotdebt=$(grep -c '"analyzer": "hotpathalloc"' lint_baseline.json || true)
[ "$hotdebt" -le 301 ] || {
	echo "check: FAIL: hotpathalloc baseline grew to $hotdebt entries (ratchet: <= 301)" >&2
	exit 1
}
echo "check: hotpathalloc baseline at $hotdebt entries (ratchet: <= 301)"

# Backend equivalence at full scale: the complete experiment sweep must
# print byte-identical tables through the in-process backend, the remote
# wire backend on a clean network, and the remote backend under an enabled
# fault schedule (every site firing). Stats go to stderr; stdout is the
# comparable artifact.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
echo "==> experiments -all -backend=inprocess"
go run ./cmd/experiments -all -seed 2025 >"$tmp/inprocess.out"
echo "==> experiments -all -backend=inprocess (parallel expansion + Try cache)"
go run ./cmd/experiments -all -seed 2025 -search-parallelism=8 -try-cache \
	>"$tmp/parallel.out"
echo "==> experiments -all -backend=remote (clean network, lockstep wire)"
go run ./cmd/experiments -all -seed 2025 -backend=remote -wire-timeout 150ms \
	-wire-batch=false >"$tmp/remote.out"
echo "==> experiments -all -intern=false (hash-consing disabled)"
go run ./cmd/experiments -all -seed 2025 -intern=false >"$tmp/nointern.out"
echo "==> experiments -all -search-arena=false (scratch arenas disabled)"
go run ./cmd/experiments -all -seed 2025 -search-arena=false >"$tmp/noarena.out"
echo "==> experiments -all -backend=remote (chaos schedule, batched wire)"
go run ./cmd/experiments -all -seed 2025 -backend=remote -wire-timeout 150ms \
	-faults 'drop-conn=0.0005,stall=0.00002,corrupt-answer=0.0002,partial-write=0.0002' \
	>"$tmp/chaos.out"
echo "==> experiments -all -workers 4 (distributed sweep, clean fleet)"
go run ./cmd/experiments -all -seed 2025 -workers 4 -wire-timeout 150ms \
	>"$tmp/distributed.out"
echo "==> experiments -all -workers 4 (distributed sweep, fleet chaos: kills + stalls + wire faults)"
go run ./cmd/experiments -all -seed 2025 -workers 4 -wire-timeout 150ms \
	-straggler 100ms \
	-faults 'worker-kill=0.005,worker-stall=0.01,drop-conn=0.002,corrupt-answer=0.0002' \
	>"$tmp/distchaos.out"
# Persistent proof cache: a cold populate, a warm re-run answering from the
# store, and a second warm pass with the store mounted read-only must all
# print the same bytes as the storeless baseline — the warm path changes
# latency, never tables — and every run's mirror sample cross-checks
# persisted records against live recomputation (a mismatch exits nonzero).
echo "==> experiments -all -proof-cache (cold populate)"
go run ./cmd/experiments -all -seed 2025 -try-cache -proof-cache "$tmp/pcache" \
	>"$tmp/pcache-cold.out"
echo "==> experiments -all -proof-cache (warm re-run)"
go run ./cmd/experiments -all -seed 2025 -try-cache -proof-cache "$tmp/pcache" \
	>"$tmp/pcache-warm.out"
echo "==> experiments -all -proof-cache-readonly (second warm pass)"
go run ./cmd/experiments -all -seed 2025 -try-cache -proof-cache "$tmp/pcache" \
	-proof-cache-readonly >"$tmp/pcache-warm2.out"
echo "==> experiments -all -proof-cache + remote chaos (warm store, faulted wire)"
go run ./cmd/experiments -all -seed 2025 -try-cache -proof-cache "$tmp/pcache" \
	-backend=remote -wire-timeout 150ms \
	-faults 'drop-conn=0.0005,stall=0.00002,corrupt-answer=0.0002,partial-write=0.0002' \
	>"$tmp/pcache-chaos.out"
cmp "$tmp/inprocess.out" "$tmp/parallel.out" || {
	echo "check: FAIL: parallel/cached search tables differ from serial" >&2
	exit 1
}
cmp "$tmp/inprocess.out" "$tmp/remote.out" || {
	echo "check: FAIL: remote backend tables differ from in-process" >&2
	exit 1
}
cmp "$tmp/inprocess.out" "$tmp/chaos.out" || {
	echo "check: FAIL: fault-injected backend tables differ from in-process" >&2
	exit 1
}
cmp "$tmp/inprocess.out" "$tmp/nointern.out" || {
	echo "check: FAIL: tables differ with hash-consing disabled" >&2
	exit 1
}
cmp "$tmp/inprocess.out" "$tmp/noarena.out" || {
	echo "check: FAIL: tables differ with scratch arenas disabled" >&2
	exit 1
}
cmp "$tmp/inprocess.out" "$tmp/distributed.out" || {
	echo "check: FAIL: distributed sweep tables differ from in-process" >&2
	exit 1
}
cmp "$tmp/inprocess.out" "$tmp/distchaos.out" || {
	echo "check: FAIL: distributed sweep tables differ under fleet chaos" >&2
	exit 1
}
for leg in pcache-cold pcache-warm pcache-warm2 pcache-chaos; do
	cmp "$tmp/inprocess.out" "$tmp/$leg.out" || {
		echo "check: FAIL: proof-cache leg $leg tables differ from storeless baseline" >&2
		exit 1
	}
done
echo "check: backend equivalence holds (serial = parallel+cached = remote-lockstep = remote-batched+chaos = intern-off = arena-off = distributed = distributed+chaos = proof-cache cold/warm/warm-ro/chaos)"

echo "check: all gates passed"
