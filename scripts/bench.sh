#!/bin/sh
# Benchmark trajectory harness: runs the sweep-scale benchmark suite and
# writes BENCH_sweep.json (ns/op, B/op, allocs/op, plus any b.ReportMetric
# coverage metrics) at the repository root. If a BENCH_sweep.json from an earlier run exists,
# its results are preserved under "previous" so successive PRs accumulate a
# perf trajectory instead of overwriting the baseline.
#
# Usage: scripts/bench.sh [benchtime]   (default benchtime: 3x)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
PATTERN='BenchmarkPromptBuild$|BenchmarkRestrictEnv$|BenchmarkFingerprint$|BenchmarkFigure1a$|BenchmarkTable2$|BenchmarkBestFirstExpand$|BenchmarkTryCache$|BenchmarkWarmSweep$|BenchmarkRemoteExpand$|BenchmarkInternTerm$|BenchmarkFingerprintKey$|BenchmarkSubstFastPath$|BenchmarkTypedLoad$|BenchmarkDistributedSweep$'
OUT=BENCH_sweep.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench ($BENCHTIME)"
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . | tee "$RAW"

PREV='null'
if [ -f "$OUT" ]; then
    # Keep only the prior run's flat results as the new "previous" field.
    PREV=$(awk 'BEGIN{inb=0} /"benchmarks": \[/{inb=1; printf "["; next} inb&&/^  \]/{printf "]"; exit} inb{gsub(/^[ \t]+/,""); printf "%s", $0}' "$OUT")
    [ -n "$PREV" ] || PREV='null'
fi

awk -v prev="$PREV" -v benchtime="$BENCHTIME" '
BEGIN {
    n = 0
}
$1 ~ /^Benchmark/ && $NF == "ns\/op" || ($0 ~ /ns\/op/ && $1 ~ /^Benchmark/) {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    nsop = ""
    bop = "null"
    aop = "null"
    metrics = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") nsop = $i
        else if ($(i + 1) == "B/op") bop = $i
        else if ($(i + 1) == "allocs/op") aop = $i
        else if ($(i + 1) ~ /%$|^[a-zA-Z]/ && $(i + 1) != "ns/op" && $i ~ /^[0-9.]+$/) {
            if (metrics != "") metrics = metrics ", "
            metrics = metrics "\"" $(i + 1) "\": " $i
            i++
        }
    }
    if (nsop == "") next
    n++
    entry[n] = sprintf("{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"metrics\": {%s}}", name, iters, nsop, bop, aop, metrics)
}
END {
    printf "{\n"
    printf "  \"harness\": \"scripts/bench.sh\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) printf "    %s%s\n", entry[i], (i < n ? "," : "")
    printf "  ],\n"
    printf "  \"previous\": %s\n", prev
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
